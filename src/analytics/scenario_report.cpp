#include "analytics/scenario_report.h"

#include <cstdio>
#include <optional>
#include <utility>

#include "common/running_stats.h"

namespace lingxi::analytics {
namespace {

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

std::size_t cohort_size(const scenario::Cohort& cohort, std::size_t users) {
  std::size_t count = 0;
  for (std::size_t u = 0; u < users; ++u) {
    if (cohort.contains(u)) ++count;
  }
  return count;
}

/// Daily cohort-minus-rest gap of mean per-user-day stall seconds; a day is
/// undefined (nullopt) when either group has no user-days on it.
std::vector<std::optional<double>> daily_stall_gap(
    std::span<const UserDayRecord> records, const scenario::Cohort& cohort,
    std::size_t days) {
  std::vector<double> cohort_sum(days, 0.0), rest_sum(days, 0.0);
  std::vector<std::size_t> cohort_n(days, 0), rest_n(days, 0);
  for (const auto& rec : records) {
    if (rec.day >= days) continue;
    if (cohort.contains(rec.user)) {
      cohort_sum[rec.day] += rec.stall_time;
      ++cohort_n[rec.day];
    } else {
      rest_sum[rec.day] += rec.stall_time;
      ++rest_n[rec.day];
    }
  }
  std::vector<std::optional<double>> gaps(days);
  for (std::size_t d = 0; d < days; ++d) {
    if (cohort_n[d] > 0 && rest_n[d] > 0) {
      gaps[d] = cohort_sum[d] / static_cast<double>(cohort_n[d]) -
                rest_sum[d] / static_cast<double>(rest_n[d]);
    }
  }
  return gaps;
}

/// DiD over the defined days of [0, first_day) vs [first_day, last_day).
/// Falls back to plain window means (effect/t/p left at defaults) when
/// either side has fewer than the estimator's two-day minimum; `has_did`
/// reports which path was taken.
stats::DidResult window_did(const std::vector<std::optional<double>>& gaps,
                            std::size_t first_day, std::size_t last_day,
                            bool& has_did) {
  std::vector<double> pre, post;
  for (std::size_t d = 0; d < first_day && d < gaps.size(); ++d) {
    if (gaps[d]) pre.push_back(*gaps[d]);
  }
  for (std::size_t d = first_day; d < last_day && d < gaps.size(); ++d) {
    if (gaps[d]) post.push_back(*gaps[d]);
  }
  if (pre.size() >= 2 && post.size() >= 2) {
    has_did = true;
    return stats::difference_in_differences(pre, post);
  }
  has_did = false;
  stats::DidResult result;
  const auto mean = [](const std::vector<double>& v) {
    double sum = 0.0;
    for (double x : v) sum += x;
    return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
  };
  result.pre_gap = mean(pre);
  result.post_gap = mean(post);
  return result;
}

ScenarioEventWindow summarize_event(
    const char* kind, std::size_t index, const scenario::Cohort& cohort,
    std::size_t first_day, std::size_t last_day, std::size_t users, std::size_t days,
    std::span<const UserDayRecord> control, std::span<const UserDayRecord> treatment) {
  ScenarioEventWindow window;
  window.kind = kind;
  window.index = index;
  window.first_day = first_day;
  window.last_day = last_day;
  window.cohort_users = cohort_size(cohort, users);
  bool control_did = false, treatment_did = false;
  window.control_stall_did =
      window_did(daily_stall_gap(control, cohort, days), first_day, last_day, control_did);
  window.treatment_stall_did =
      window_did(daily_stall_gap(treatment, cohort, days), first_day, last_day,
                 treatment_did);
  window.has_did = control_did && treatment_did;
  return window;
}

}  // namespace

ScenarioReport summarize_scenario(const scenario::ScenarioScript& script,
                                  std::size_t users, std::size_t days,
                                  std::span<const UserDayRecord> control_user_days,
                                  std::span<const UserDayRecord> treatment_user_days) {
  ScenarioReport report;

  for (std::size_t i = 0; i < script.shocks.size(); ++i) {
    const auto& shock = script.shocks[i];
    report.events.push_back(summarize_event("bandwidth_shock", i, shock.cohort,
                                            shock.first_day, shock.last_day, users, days,
                                            control_user_days, treatment_user_days));
  }
  for (std::size_t i = 0; i < script.flash_crowds.size(); ++i) {
    const auto& crowd = script.flash_crowds[i];
    report.events.push_back(summarize_event("flash_crowd", i, crowd.cohort,
                                            crowd.arrival_day, days, users, days,
                                            control_user_days, treatment_user_days));
  }
  for (std::size_t i = 0; i < script.churns.size(); ++i) {
    const auto& churn = script.churns[i];
    report.events.push_back(summarize_event("churn", i, churn.cohort, churn.day, days,
                                            users, days, control_user_days,
                                            treatment_user_days));
  }

  // Cohort buckets: one per scripted cohort, in script order, plus the
  // unscripted "rest". A slot named by several events lands in each of its
  // buckets; "rest" holds the slots named by none.
  std::vector<std::pair<std::string, scenario::Cohort>> cohorts;
  const auto add_cohort = [&cohorts](const char* prefix, std::size_t index,
                                     const scenario::Cohort& cohort) {
    cohorts.emplace_back(prefix + std::to_string(index), cohort);
  };
  for (std::size_t i = 0; i < script.shocks.size(); ++i) {
    add_cohort("shock", i, script.shocks[i].cohort);
  }
  for (std::size_t i = 0; i < script.flash_crowds.size(); ++i) {
    add_cohort("flash", i, script.flash_crowds[i].cohort);
  }
  for (std::size_t i = 0; i < script.churns.size(); ++i) {
    add_cohort("churn", i, script.churns[i].cohort);
  }
  for (std::size_t i = 0; i < script.cohorts.size(); ++i) {
    add_cohort("cohort", i, script.cohorts[i].cohort);
  }

  const auto in_any = [&cohorts](std::size_t user) {
    for (const auto& [name, cohort] : cohorts) {
      if (cohort.contains(user)) return true;
    }
    return false;
  };

  for (std::size_t b = 0; b <= cohorts.size(); ++b) {
    const bool rest = b == cohorts.size();
    const auto member = [&](std::size_t user) {
      return rest ? !in_any(user) : cohorts[b].second.contains(user);
    };
    ScenarioCohortBucket bucket;
    bucket.name = rest ? "rest" : cohorts[b].first;
    for (std::size_t u = 0; u < users; ++u) {
      if (member(u)) ++bucket.cohort_users;
    }
    RunningStats beta;
    for (const auto& rec : treatment_user_days) {
      if (!member(rec.user)) continue;
      beta.add(rec.mean_beta);
      bucket.treatment_stall += rec.stall_time;
      bucket.treatment_watch += rec.watch_time;
    }
    for (const auto& rec : control_user_days) {
      if (!member(rec.user)) continue;
      bucket.control_stall += rec.stall_time;
      bucket.control_watch += rec.watch_time;
    }
    bucket.user_days = beta.count();
    bucket.mean_beta = beta.empty() ? 0.0 : beta.mean();
    bucket.sd_beta = beta.empty() ? 0.0 : beta.stddev();
    report.cohorts.push_back(std::move(bucket));
  }
  return report;
}

std::string to_json(const ScenarioReport& report) {
  std::string out = "{\n  \"events\": [\n";
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const ScenarioEventWindow& e = report.events[i];
    out += "    {\"kind\": \"" + e.kind + "\", \"index\": ";
    append_number(out, static_cast<double>(e.index));
    out += ", \"first_day\": ";
    append_number(out, static_cast<double>(e.first_day));
    out += ", \"last_day\": ";
    append_number(out, static_cast<double>(e.last_day));
    out += ", \"cohort_users\": ";
    append_number(out, static_cast<double>(e.cohort_users));
    out += ", \"has_did\": ";
    out += e.has_did ? "true" : "false";
    for (const auto& [arm, did] :
         {std::pair<const char*, const stats::DidResult*>{"control", &e.control_stall_did},
          {"treatment", &e.treatment_stall_did}}) {
      out += std::string(", \"") + arm + "_pre_gap\": ";
      append_number(out, did->pre_gap);
      out += std::string(", \"") + arm + "_post_gap\": ";
      append_number(out, did->post_gap);
      out += std::string(", \"") + arm + "_effect\": ";
      append_number(out, did->effect);
      out += std::string(", \"") + arm + "_p\": ";
      append_number(out, did->p_two_sided);
    }
    out += i + 1 < report.events.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"cohorts\": [\n";
  for (std::size_t i = 0; i < report.cohorts.size(); ++i) {
    const ScenarioCohortBucket& c = report.cohorts[i];
    out += "    {\"name\": \"" + c.name + "\", \"cohort_users\": ";
    append_number(out, static_cast<double>(c.cohort_users));
    out += ", \"user_days\": ";
    append_number(out, static_cast<double>(c.user_days));
    out += ", \"mean_beta\": ";
    append_number(out, c.mean_beta);
    out += ", \"sd_beta\": ";
    append_number(out, c.sd_beta);
    out += ", \"control_stall\": ";
    append_number(out, c.control_stall);
    out += ", \"treatment_stall\": ";
    append_number(out, c.treatment_stall);
    out += ", \"control_watch\": ";
    append_number(out, c.control_watch);
    out += ", \"treatment_watch\": ";
    append_number(out, c.treatment_watch);
    out += ", \"stall_diff_pct\": ";
    append_number(out, c.stall_diff_pct());
    out += i + 1 < report.cohorts.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace lingxi::analytics
