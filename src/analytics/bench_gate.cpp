#include "analytics/bench_gate.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <utility>

namespace lingxi::analytics {
namespace {

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

Expected<BaselineSpec> BaselineSpec::parse(const JsonValue& doc) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "lingxi.bench.baseline/v1") {
    return Error::parse("baseline: missing or unknown schema (want lingxi.bench.baseline/v1)");
  }
  BaselineSpec spec;
  if (const JsonValue* d = doc.find("max_regression"); d != nullptr) {
    if (!d->is_number() || d->as_number() < 0.0) {
      return Error::parse("baseline: max_regression must be a non-negative number");
    }
    spec.default_max_regression = d->as_number();
  }
  const JsonValue* checks = doc.find("checks");
  if (checks == nullptr || !checks->is_array()) {
    return Error::parse("baseline: missing checks array");
  }
  for (const JsonValue& entry : checks->as_array()) {
    if (!entry.is_object()) return Error::parse("baseline: check must be an object");
    BaselineCheck check;
    auto require_string = [&entry](const char* key) -> Expected<std::string> {
      const JsonValue* v = entry.find(key);
      if (v == nullptr || !v->is_string() || v->as_string().empty()) {
        return Error::parse(std::string("baseline: check needs string '") + key + "'");
      }
      return v->as_string();
    };
    auto name = require_string("name");
    if (!name) return name.error();
    check.name = std::move(*name);
    auto input = require_string("input");
    if (!input) return input.error();
    check.input = std::move(*input);
    auto metric = require_string("metric");
    if (!metric) return metric.error();
    check.metric = std::move(*metric);
    if (const JsonValue* v = entry.find("divide_by"); v != nullptr) {
      if (!v->is_string()) return Error::parse("baseline: divide_by must be a string");
      check.divide_by = v->as_string();
    }
    const JsonValue* baseline = entry.find("baseline");
    if (baseline == nullptr || !baseline->is_number()) {
      return Error::parse("baseline: check '" + check.name + "' needs numeric 'baseline'");
    }
    check.baseline = baseline->as_number();
    if (const JsonValue* v = entry.find("higher_is_better"); v != nullptr) {
      if (!v->is_bool()) return Error::parse("baseline: higher_is_better must be a bool");
      check.higher_is_better = v->as_bool();
    }
    if (const JsonValue* v = entry.find("max_regression"); v != nullptr) {
      if (!v->is_number() || v->as_number() < 0.0) {
        return Error::parse("baseline: per-check max_regression must be non-negative");
      }
      check.max_regression = v->as_number();
    }
    spec.checks.push_back(std::move(check));
  }
  if (spec.checks.empty()) return Error::parse("baseline: checks array is empty");
  return spec;
}

Expected<BaselineSpec> BaselineSpec::load(const std::string& path) {
  auto doc = parse_json_file(path);
  if (!doc) return doc.error();
  return parse(*doc);
}

GateReport evaluate_baseline(const BaselineSpec& spec,
                             const std::map<std::string, JsonValue>& inputs) {
  GateReport report;
  for (const BaselineCheck& check : spec.checks) {
    CheckResult result;
    result.name = check.name;
    result.baseline = check.baseline;
    auto fail = [&](std::string why) {
      result.ok = false;
      result.detail = std::move(why);
      report.results.push_back(result);
    };

    auto input = inputs.find(check.input);
    if (input == inputs.end()) {
      fail("no --input labeled '" + check.input + "'");
      continue;
    }
    const JsonValue* metric = input->second.find_path(check.metric);
    if (metric == nullptr || !metric->is_number()) {
      fail("metric path '" + check.metric + "' missing or non-numeric");
      continue;
    }
    double observed = metric->as_number();
    if (!check.divide_by.empty()) {
      const JsonValue* denom = input->second.find_path(check.divide_by);
      if (denom == nullptr || !denom->is_number()) {
        fail("divide_by path '" + check.divide_by + "' missing or non-numeric");
        continue;
      }
      observed = observed / denom->as_number();
    }
    if (!std::isfinite(observed)) {
      fail("observed value is not finite");
      continue;
    }
    result.observed = observed;
    result.rel_change = check.baseline == 0.0
                            ? 0.0
                            : (observed - check.baseline) / std::fabs(check.baseline);
    const double tolerance =
        check.max_regression >= 0.0 ? check.max_regression : spec.default_max_regression;
    const double bound = check.higher_is_better ? check.baseline * (1.0 - tolerance)
                                                : check.baseline * (1.0 + tolerance);
    result.ok = check.higher_is_better ? observed >= bound : observed <= bound;
    result.detail = "observed " + format_value(observed) + " vs baseline " +
                    format_value(check.baseline) + " (" +
                    (check.higher_is_better ? "floor " : "ceiling ") + format_value(bound) +
                    ")";
    report.results.push_back(std::move(result));
  }
  return report;
}

void GateReport::write_text(std::ostream& os) const {
  for (const CheckResult& r : results) {
    char line[320];
    std::snprintf(line, sizeof(line), "  %-4s %-40s %s (%+.1f%%)\n", r.ok ? "ok" : "FAIL",
                  r.name.c_str(), r.detail.c_str(), r.rel_change * 100.0);
    os << line;
  }
}

}  // namespace lingxi::analytics
