#include "analytics/fig13.h"

#include <cstdio>

#include "common/running_stats.h"
#include "trace/population.h"

namespace lingxi::analytics {
namespace {

constexpr std::size_t kBuckets = 6;

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

}  // namespace

Fig13Result summarize_fig13(const ExperimentResult& control,
                            const ExperimentResult& treatment) {
  RunningStats beta[kBuckets];
  double control_stall[kBuckets] = {};
  double treatment_stall[kBuckets] = {};
  for (const auto& rec : treatment.user_days) {
    const std::size_t b = trace::bandwidth_bucket(rec.mean_bandwidth);
    beta[b].add(rec.mean_beta);
    treatment_stall[b] += rec.stall_time;
  }
  for (const auto& rec : control.user_days) {
    control_stall[trace::bandwidth_bucket(rec.mean_bandwidth)] += rec.stall_time;
  }

  Fig13Result result;
  result.buckets.resize(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    Fig13Bucket& bucket = result.buckets[b];
    bucket.bucket = b;
    bucket.label = trace::bucket_label(b);
    bucket.user_days = beta[b].count();
    bucket.mean_beta = beta[b].empty() ? 0.0 : beta[b].mean();
    bucket.sd_beta = beta[b].empty() ? 0.0 : beta[b].stddev();
    bucket.control_stall = control_stall[b];
    bucket.treatment_stall = treatment_stall[b];
  }
  return result;
}

Fig13Result run_fig13(const PopulationExperiment& experiment, std::uint64_t seed) {
  const ExperimentResult control = experiment.run(false, seed);
  const ExperimentResult treatment = experiment.run(true, seed);
  return summarize_fig13(control, treatment);
}

std::string to_json(const Fig13Result& result) {
  std::string out = "{\n  \"buckets\": [\n";
  for (std::size_t i = 0; i < result.buckets.size(); ++i) {
    const Fig13Bucket& b = result.buckets[i];
    out += "    {\"bucket\": ";
    append_number(out, static_cast<double>(b.bucket));
    out += ", \"label\": \"" + b.label + "\", \"user_days\": ";
    append_number(out, static_cast<double>(b.user_days));
    out += ", \"mean_beta\": ";
    append_number(out, b.mean_beta);
    out += ", \"sd_beta\": ";
    append_number(out, b.sd_beta);
    out += ", \"control_stall\": ";
    append_number(out, b.control_stall);
    out += ", \"treatment_stall\": ";
    append_number(out, b.treatment_stall);
    out += ", \"stall_diff_pct\": ";
    append_number(out, b.stall_diff_pct());
    out += i + 1 < result.buckets.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace lingxi::analytics
