// Scenario analytics — event-window and cohort effects over an A/B fleet.
//
// Rides the capture-once/query-many telemetry plane: both arms of a
// scripted experiment are simulated (or replayed from archives) into
// per-user-day records, and this module answers "what did each scripted
// event do?" two ways:
//
//   * per-event difference-in-differences: for every bandwidth shock,
//     flash crowd and churn event, the daily ABSOLUTE gap between the
//     event's cohort and the rest of the fleet (mean stall seconds per
//     user-day) is compared pre-window vs in-window with the §5.3 DiD
//     estimator, separately for the control and treatment arms — the
//     treatment-arm DiD shows how much of the event's damage LingXi
//     absorbed. Absolute (not relative) gaps keep the estimator defined
//     when the quiet group stalls near zero.
//   * per-cohort Fig. 13-style buckets: every scripted cohort (plus the
//     unscripted "rest") gets treatment beta statistics and
//     control-vs-treatment stall/watch sums, with the same
//     stall_diff_pct() reading as Fig. 13. Slots named by several events
//     appear in each of their buckets.
//
// Shared by bench_scenarios and the scenario golden-fixture test.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "analytics/experiment.h"
#include "scenario/scenario.h"
#include "stats/did.h"

namespace lingxi::analytics {

/// One scripted event's effect window. pre window is [0, first_day); the
/// event window is [first_day, last_day). Gaps are cohort-minus-rest means
/// of per-user-day stall seconds; days where either group has no user-days
/// (pre-arrival flash-crowd days, zero-session diurnal days) drop out of
/// the series. has_did is false when fewer than two defined days remain on
/// either side — the gap means are still reported.
struct ScenarioEventWindow {
  std::string kind;        ///< "bandwidth_shock" | "flash_crowd" | "churn"
  std::size_t index = 0;   ///< position within its kind in the script
  std::size_t first_day = 0;
  std::size_t last_day = 0;
  std::size_t cohort_users = 0;  ///< fleet slots the event's cohort names
  bool has_did = false;
  stats::DidResult control_stall_did;
  stats::DidResult treatment_stall_did;
};

/// Fig. 13-style aggregate for one scripted cohort (or the "rest").
struct ScenarioCohortBucket {
  std::string name;          ///< "shock0", "flash0", "churn0", "cohort0", "rest"
  std::size_t cohort_users = 0;
  std::size_t user_days = 0;  ///< treatment-arm user-days in the bucket
  double mean_beta = 0.0;
  double sd_beta = 0.0;
  double control_stall = 0.0;    ///< summed stall seconds, control arm
  double treatment_stall = 0.0;  ///< summed stall seconds, treatment arm
  double control_watch = 0.0;    ///< summed watch seconds, control arm
  double treatment_watch = 0.0;  ///< summed watch seconds, treatment arm

  /// Relative stall-time change (%); 0 when the control bucket saw no stall.
  double stall_diff_pct() const noexcept {
    return control_stall > 0.0
               ? (treatment_stall - control_stall) / control_stall * 100.0
               : 0.0;
  }
};

struct ScenarioReport {
  std::vector<ScenarioEventWindow> events;
  std::vector<ScenarioCohortBucket> cohorts;
};

/// Summarize a paired A/B run of `script` on a (users, days) fleet from the
/// two arms' per-user-day records (ExperimentResult::user_days or
/// telemetry::ReplayResult::user_days).
ScenarioReport summarize_scenario(const scenario::ScenarioScript& script,
                                  std::size_t users, std::size_t days,
                                  std::span<const UserDayRecord> control_user_days,
                                  std::span<const UserDayRecord> treatment_user_days);

/// Deterministic JSON rendering — the golden-fixture format.
std::string to_json(const ScenarioReport& report);

}  // namespace lingxi::analytics
