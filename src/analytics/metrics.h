// Aggregation of session results into the QoS/QoE metrics the paper reports:
// total watch time, time-weighted mean bitrate, total stall time, completion
// rate, QoE_lin.
#pragma once

#include <cstddef>

#include "sim/session.h"
#include "trace/video.h"

namespace lingxi::analytics {

class MetricAccumulator {
 public:
  void add(const sim::SessionResult& session);
  void merge(const MetricAccumulator& other);

  double total_watch_time() const noexcept { return watch_time_; }
  double total_stall_time() const noexcept { return stall_time_; }
  /// Watch-time-weighted mean bitrate (kbps).
  double mean_bitrate() const noexcept;
  double completion_rate() const noexcept;
  std::size_t sessions() const noexcept { return sessions_; }
  std::size_t completed() const noexcept { return completed_; }
  std::size_t stall_events() const noexcept { return stall_events_; }
  std::size_t quality_switches() const noexcept { return switches_; }
  /// Stall seconds per 10000 watch seconds (the unit of Fig. 3(b)).
  double stall_per_10k() const noexcept;

 private:
  double watch_time_ = 0.0;
  double stall_time_ = 0.0;
  double bitrate_time_ = 0.0;  ///< sum of bitrate * watch_time per session
  std::size_t sessions_ = 0;
  std::size_t completed_ = 0;
  std::size_t stall_events_ = 0;
  std::size_t switches_ = 0;
};

}  // namespace lingxi::analytics
