// Perf-regression gate over bench --json summaries.
//
// bench/baseline.json commits the expected perf trajectory as a list of
// checks; bench_compare (bench/bench_compare.cpp) evaluates a fresh bench
// run's --json output against them and exits non-zero past the regression
// threshold — CI's first run-to-run perf signal.
//
// Machine portability: raw sessions/sec differs across runners, so checks
// are expressed CPU-seconds-normalized — each `metric` may carry a
// `divide_by` path, and the gate compares the dimensionless ratio (e.g.
// batched / scalar sessions-per-sec, both measured in the same process on
// the same machine) against the committed baseline value. Ratios of two
// same-process CPU measurements cancel machine speed, leaving only the
// relative-efficiency signal the gate is after.
//
// Baseline schema `lingxi.bench.baseline/v1`:
//   {"schema": "lingxi.bench.baseline/v1",
//    "max_regression": 0.15,              // default, per-check override below
//    "checks": [
//      {"name": "...",                    // unique label for the report
//       "input": "fleet_scaling",         // which --input label to read
//       "metric": "batched_sessions_per_sec",      // dotted path
//       "divide_by": "scalar_sessions_per_sec",    // optional dotted path
//       "baseline": 1.35,                 // committed expected value
//       "higher_is_better": true,         // default true
//       "max_regression": 0.2}]}          // optional per-check fraction
//
// A check regresses when the observed value falls short of (exceeds, for
// lower-is-better) the baseline by more than max_regression, relative:
//   higher_is_better:  observed < baseline * (1 - max_regression)
//   lower_is_better:   observed > baseline * (1 + max_regression)
// A missing input, missing path or non-finite ratio fails the check — a
// gate that silently skips is no gate.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/json.h"

namespace lingxi::analytics {

struct BaselineCheck {
  std::string name;
  std::string input;      ///< label of the bench summary to read
  std::string metric;     ///< dotted path into that summary
  std::string divide_by;  ///< optional dotted path; observed = metric / divide_by
  double baseline = 0.0;
  bool higher_is_better = true;
  double max_regression = -1.0;  ///< < 0: inherit the spec default
};

struct BaselineSpec {
  double default_max_regression = 0.15;
  std::vector<BaselineCheck> checks;

  /// Parse a `lingxi.bench.baseline/v1` document; schema violations are
  /// Error::kParse.
  static Expected<BaselineSpec> parse(const JsonValue& doc);
  static Expected<BaselineSpec> load(const std::string& path);
};

struct CheckResult {
  std::string name;
  double baseline = 0.0;
  double observed = 0.0;
  double rel_change = 0.0;  ///< (observed - baseline) / |baseline|
  bool ok = false;
  std::string detail;  ///< failure reason / comparison summary
};

struct GateReport {
  std::vector<CheckResult> results;
  bool ok() const noexcept {
    for (const CheckResult& r : results) {
      if (!r.ok) return false;
    }
    return true;
  }
  void write_text(std::ostream& os) const;
};

/// Evaluate every check against the labeled bench summaries.
GateReport evaluate_baseline(const BaselineSpec& spec,
                             const std::map<std::string, JsonValue>& inputs);

}  // namespace lingxi::analytics
