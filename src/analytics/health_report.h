// Post-hoc analytics over an obs timeline file.
//
// A TimelineWriter (src/obs/timeline.h) leaves one CRC-framed record per
// fleet day; this module turns that archive back into operator-facing
// answers: how did each metric move day over day, where did the latency
// distribution sit (bucket-interpolated p50/p95/p99), which SLO alerts
// fired, and — given two timelines from two builds — which metrics moved
// between them. bench/bench_health_report.cpp is the CLI wrapper; the
// two-timeline comparator backs build-to-build regression triage the same
// way analytics::bench_gate does for bench summaries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/expected.h"
#include "obs/timeline.h"

namespace lingxi::analytics {

/// One metric's trajectory across the timeline's day records.
struct MetricDaySeries {
  std::string name;
  obs::MetricKind kind = obs::MetricKind::kGauge;
  bool deterministic = false;  ///< came from the deterministic section
  std::vector<std::uint64_t> days;
  /// One point per day: gauge value, counter value, or histogram
  /// observation count.
  std::vector<double> values;

  // Day-over-day summary of `values`.
  double first = 0.0;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Final-day latency digest for one histogram metric.
struct HistogramDigest {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Everything a single timeline says, summarized.
struct TimelineSummary {
  std::uint64_t day_records = 0;
  std::uint64_t first_day = 0;
  std::uint64_t last_day = 0;
  std::vector<MetricDaySeries> series;        ///< sorted by name
  std::vector<HistogramDigest> histograms;    ///< sorted by name, final day
  std::vector<obs::HealthAlert> alerts;       ///< in file order

  /// Series by exact name; nullptr when absent.
  const MetricDaySeries* find(std::string_view name) const noexcept;

  /// Human-readable report.
  void write_text(std::ostream& os) const;
  /// Stable JSON schema `lingxi.obs.health_report/v1`:
  ///   {"schema": ..., "day_records": n, "first_day": d, "last_day": d,
  ///    "metrics": [{"name", "kind", "deterministic", "first", "last",
  ///                 "min", "max", "mean"}...],
  ///    "histograms": [{"name", "count", "sum", "p50", "p95", "p99"}...],
  ///    "alerts": [{"day", "rule", "metric", "observed", "threshold",
  ///                "message"}...]}
  void write_json(std::ostream& os) const;
};

/// Read and summarize one timeline file (corruption propagates from
/// obs::TimelineReader).
Expected<TimelineSummary> summarize_timeline(const std::string& path);

/// One metric whose final-day value moved between two timelines.
struct MetricDelta {
  std::string name;
  double base = 0.0;       ///< final-day value in the base timeline
  double candidate = 0.0;  ///< final-day value in the candidate timeline
  /// (candidate - base) / |base|; candidate/0 reports +/-inf direction via
  /// a +/-1e9 sentinel so sorting stays finite.
  double rel_change = 0.0;
};

/// Two-timeline A/B comparison: final-day values of every metric present in
/// both summaries, flagged when |rel_change| exceeds `threshold`.
struct TimelineComparison {
  std::vector<MetricDelta> flagged;    ///< |rel_change| > threshold, by magnitude
  std::vector<std::string> base_only;  ///< metrics missing from the candidate
  std::vector<std::string> candidate_only;
  std::uint64_t base_alerts = 0;
  std::uint64_t candidate_alerts = 0;

  bool clean() const noexcept {
    return flagged.empty() && base_only.empty() && candidate_only.empty();
  }
  void write_text(std::ostream& os) const;
};

TimelineComparison compare_timelines(const TimelineSummary& base,
                                     const TimelineSummary& candidate,
                                     double threshold);

}  // namespace lingxi::analytics
