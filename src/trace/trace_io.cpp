#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

namespace lingxi::trace {

Expected<std::vector<TraceBandwidth::Point>> parse_trace(const std::string& text) {
  std::vector<TraceBandwidth::Point> points;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    double t = 0.0, kbps = 0.0;
    if (!(ls >> t)) continue;  // blank / comment-only line
    if (!(ls >> kbps)) {
      return Error::parse("trace line " + std::to_string(lineno) + ": missing bandwidth");
    }
    if (kbps <= 0.0) {
      return Error::parse("trace line " + std::to_string(lineno) + ": non-positive bandwidth");
    }
    if (!points.empty() && t <= points.back().time) {
      return Error::parse("trace line " + std::to_string(lineno) + ": non-increasing time");
    }
    points.push_back({t, kbps});
  }
  if (points.empty()) return Error::parse("trace contains no data points");
  return points;
}

Expected<std::vector<TraceBandwidth::Point>> load_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Error::io("cannot open trace file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_trace(ss.str());
}

Status save_trace_file(const std::string& path,
                       const std::vector<TraceBandwidth::Point>& points) {
  std::ofstream f(path);
  if (!f) return Error::io("cannot open trace file for write: " + path);
  f << "# lingxi bandwidth trace: <time_s> <kbps>\n";
  for (const auto& p : points) f << p.time << ' ' << p.rate << '\n';
  if (!f) return Error::io("write failed: " + path);
  return {};
}

}  // namespace lingxi::trace
