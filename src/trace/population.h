// Synthetic user-network population.
//
// Substitutes for the paper's production logs: per-user mean bandwidth is
// lognormal across the population, calibrated so that ~10% of users sit below
// the ladder's maximum bitrate (Fig. 2(a)) and intra-session dynamics follow
// a Gauss–Markov process. Bandwidth buckets (0-2, 2-4, ... Mbps) mirror the
// breakdowns in Figs. 8(a) and 13.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "trace/bandwidth.h"

namespace lingxi::trace {

/// A user's network situation for one day of simulation.
struct NetworkProfile {
  Kbps mean_bandwidth = 0.0;       ///< long-run mean throughput
  double relative_sd = 0.25;       ///< intra-session sd / mean
  double rho = 0.9;                ///< AR(1) correlation

  /// Stateful intra-session model for one playback session.
  std::unique_ptr<BandwidthModel> make_session_model() const;
};

/// Samples user network profiles from a lognormal population.
class PopulationModel {
 public:
  struct Config {
    /// Median of the per-user mean bandwidth distribution.
    Kbps median_bandwidth = 12000.0;
    /// Lognormal shape: sigma of log(mean bandwidth).
    double sigma = 0.85;
    Kbps min_bandwidth = 300.0;
    Kbps max_bandwidth = 60000.0;
    /// Default intra-session variability matches fixed/Wi-Fi-grade stability
    /// (production: >90% stall-free days, Fig. 2(b)); low-bandwidth mobile
    /// worlds override this upward.
    double relative_sd = 0.15;
    double rho = 0.9;
  };

  PopulationModel();  // default config
  explicit PopulationModel(Config config) : config_(config) {}

  NetworkProfile sample(Rng& rng) const;
  std::vector<NetworkProfile> sample_many(std::size_t n, Rng& rng) const;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Standard bandwidth buckets used by Figs. 8(a)/13: [0-2), [2-4), ... Mbps,
/// with the last bucket open-ended. Returns the bucket index for `bw`.
std::size_t bandwidth_bucket(Kbps bw, std::size_t bucket_count = 6) noexcept;
/// Human-readable label, e.g. "2-4 Mbps" or "10+ Mbps".
std::string bucket_label(std::size_t bucket, std::size_t bucket_count = 6);

}  // namespace lingxi::trace
