#include "trace/video.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::trace {

const char* tier_name(QualityTier t) noexcept {
  switch (t) {
    case QualityTier::kLD: return "LD";
    case QualityTier::kSD: return "SD";
    case QualityTier::kHD: return "HD";
    case QualityTier::kFullHD: return "Full HD";
  }
  return "?";
}

BitrateLadder::BitrateLadder(std::vector<Kbps> bitrates) : bitrates_(std::move(bitrates)) {
  LINGXI_ASSERT(bitrates_.size() >= 2);
  LINGXI_ASSERT(bitrates_.front() > 0.0);
  LINGXI_ASSERT(std::is_sorted(bitrates_.begin(), bitrates_.end()));
  for (std::size_t i = 1; i < bitrates_.size(); ++i) {
    LINGXI_ASSERT(bitrates_[i] > bitrates_[i - 1]);
  }
}

BitrateLadder BitrateLadder::default_ladder() {
  return BitrateLadder{{350.0, 750.0, 1850.0, 4300.0}};
}

Kbps BitrateLadder::bitrate(std::size_t level) const {
  LINGXI_ASSERT(level < bitrates_.size());
  return bitrates_[level];
}

double BitrateLadder::quality(std::size_t level, QualityMetric metric) const {
  const Kbps rate = bitrate(level);
  switch (metric) {
    case QualityMetric::kLinearMbps:
      return rate / 1000.0;
    case QualityMetric::kLog:
      return std::log(rate / min_bitrate());
    case QualityMetric::kLevel:
      return static_cast<double>(level);
  }
  return 0.0;
}

double BitrateLadder::max_quality(QualityMetric metric) const {
  return quality(levels() - 1, metric);
}

std::size_t BitrateLadder::highest_level_below(Kbps rate) const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 0; i < bitrates_.size(); ++i) {
    if (bitrates_[i] <= rate) best = i;
  }
  return best;
}

Video::Video(BitrateLadder ladder, std::size_t segments, Seconds segment_duration)
    : ladder_(std::move(ladder)),
      segments_(segments),
      segment_duration_(segment_duration),
      size_multiplier_(segments, 1.0) {
  LINGXI_ASSERT(segments_ > 0);
  LINGXI_ASSERT(segment_duration_ > 0.0);
}

Video Video::vbr(BitrateLadder ladder, std::size_t segments, Seconds segment_duration,
                 double vbr_sigma, Rng& rng) {
  LINGXI_ASSERT(vbr_sigma >= 0.0);
  Video v{std::move(ladder), segments, segment_duration};
  if (vbr_sigma > 0.0) {
    for (auto& m : v.size_multiplier_) {
      // Clamp so a single segment can never be pathologically large/small.
      m = std::clamp(rng.lognormal(0.0, vbr_sigma), 0.5, 2.0);
    }
  }
  return v;
}

Bytes Video::segment_size(std::size_t index, std::size_t level) const {
  LINGXI_ASSERT(index < segments_);
  return units::segment_bytes(ladder_.bitrate(level), segment_duration_) *
         size_multiplier_[index];
}

Video VideoGenerator::sample(Rng& rng) const {
  const double mu = std::log(config_.mean_duration) -
                    0.5 * config_.duration_sigma * config_.duration_sigma;
  Seconds duration =
      std::clamp(rng.lognormal(mu, config_.duration_sigma), config_.min_duration,
                 config_.max_duration);
  const auto segments = static_cast<std::size_t>(
      std::max(1.0, std::round(duration / config_.segment_duration)));
  return Video::vbr(config_.ladder, segments, config_.segment_duration, config_.vbr_sigma, rng);
}

}  // namespace lingxi::trace
