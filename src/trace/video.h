// Video models: bitrate ladders, quality tiers, VBR segment sizes.
//
// The paper analyzes four quality tiers (LD / SD / HD / Full HD, §2.2) on a
// short-video platform where segments are short and videos last tens of
// seconds. `Video` holds the per-segment, per-level encoded sizes that the
// player simulator downloads.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lingxi::trace {

/// Quality tier labels used across figures.
enum class QualityTier { kLD = 0, kSD = 1, kHD = 2, kFullHD = 3 };

const char* tier_name(QualityTier t) noexcept;

/// How q(Q_k) in QoE_lin (Eq. 1) maps a ladder bitrate to a quality score.
enum class QualityMetric {
  kLinearMbps,  ///< q = bitrate / 1000 (Pensieve's linear QoE)
  kLog,         ///< q = log(bitrate / min_bitrate) (diminishing returns)
  kLevel,       ///< q = ladder index
};

/// An encoding ladder: ascending bitrates, one per quality level.
class BitrateLadder {
 public:
  /// Requires at least two strictly ascending positive bitrates.
  explicit BitrateLadder(std::vector<Kbps> bitrates);

  /// The production-style default ladder used throughout the benches:
  /// LD 350, SD 750, HD 1850, Full HD 4300 kbps.
  static BitrateLadder default_ladder();

  std::size_t levels() const noexcept { return bitrates_.size(); }
  Kbps bitrate(std::size_t level) const;
  Kbps min_bitrate() const noexcept { return bitrates_.front(); }
  Kbps max_bitrate() const noexcept { return bitrates_.back(); }

  /// Quality score q(level) under the chosen metric.
  double quality(std::size_t level, QualityMetric metric) const;
  /// Max quality value = q(top level); the paper sets the default stall
  /// penalty mu to this value.
  double max_quality(QualityMetric metric) const;

  /// Highest level whose bitrate is <= `rate`; level 0 if none.
  std::size_t highest_level_below(Kbps rate) const noexcept;

  const std::vector<Kbps>& bitrates() const noexcept { return bitrates_; }

 private:
  std::vector<Kbps> bitrates_;
};

/// A concrete video: N segments of fixed duration, encoded at every ladder
/// level with VBR size variation.
class Video {
 public:
  /// Uniform-size (CBR) video.
  Video(BitrateLadder ladder, std::size_t segments, Seconds segment_duration);

  /// VBR video: per-segment sizes jitter around nominal with lognormal
  /// multiplicative noise of `vbr_sigma` (0 = CBR).
  static Video vbr(BitrateLadder ladder, std::size_t segments, Seconds segment_duration,
                   double vbr_sigma, Rng& rng);

  const BitrateLadder& ladder() const noexcept { return ladder_; }
  std::size_t segment_count() const noexcept { return segments_; }
  Seconds segment_duration() const noexcept { return segment_duration_; }
  Seconds duration() const noexcept {
    return segment_duration_ * static_cast<double>(segments_);
  }

  /// Encoded size in bytes of segment `index` at ladder `level`.
  Bytes segment_size(std::size_t index, std::size_t level) const;

 private:
  BitrateLadder ladder_;
  std::size_t segments_;
  Seconds segment_duration_;
  /// size_multiplier_[index] applied to every level of that segment
  /// (scene complexity affects all renditions alike).
  std::vector<double> size_multiplier_;
};

/// Samples short-platform videos: duration lognormal with the given mean,
/// fixed segment duration, optional VBR jitter.
class VideoGenerator {
 public:
  struct Config {
    BitrateLadder ladder = BitrateLadder::default_ladder();
    Seconds mean_duration = 45.0;    ///< average length of online videos
    Seconds min_duration = 5.0;
    Seconds max_duration = 300.0;
    Seconds segment_duration = 1.0;  ///< short-video platforms use ~1s segments
    double duration_sigma = 0.6;     ///< lognormal shape of duration spread
    double vbr_sigma = 0.15;
  };

  explicit VideoGenerator(Config config) : config_(std::move(config)) {}

  Video sample(Rng& rng) const;
  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace lingxi::trace
