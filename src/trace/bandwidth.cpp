#include "trace/bandwidth.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::trace {

ConstantBandwidth::ConstantBandwidth(Kbps rate) : rate_(rate) { LINGXI_ASSERT(rate > 0.0); }

Kbps ConstantBandwidth::sample(Seconds, Rng&) { return rate_; }

std::unique_ptr<BandwidthModel> ConstantBandwidth::clone() const {
  return std::make_unique<ConstantBandwidth>(*this);
}

NormalBandwidth::NormalBandwidth(Kbps mean, Kbps sd, Kbps floor)
    : mean_(mean), sd_(sd), floor_(floor) {
  LINGXI_ASSERT(mean > 0.0);
  LINGXI_ASSERT(sd >= 0.0);
  LINGXI_ASSERT(floor > 0.0);
}

Kbps NormalBandwidth::sample(Seconds, Rng& rng) {
  return std::max(floor_, rng.normal(mean_, sd_));
}

std::unique_ptr<BandwidthModel> NormalBandwidth::clone() const {
  return std::make_unique<NormalBandwidth>(*this);
}

GaussMarkovBandwidth::GaussMarkovBandwidth(Config config)
    : config_(config), state_(config.mean) {
  LINGXI_ASSERT(config_.mean > 0.0);
  LINGXI_ASSERT(config_.rho >= 0.0 && config_.rho < 1.0);
  LINGXI_ASSERT(config_.noise_sd >= 0.0);
  LINGXI_ASSERT(config_.floor > 0.0);
}

Kbps GaussMarkovBandwidth::sample(Seconds, Rng& rng) {
  if (!started_) {
    // Start from the stationary distribution so early segments are not biased
    // toward the mean.
    const double stationary_sd =
        config_.noise_sd / std::sqrt(std::max(1e-9, 1.0 - config_.rho * config_.rho));
    state_ = rng.normal(config_.mean, stationary_sd);
    started_ = true;
  } else {
    state_ = config_.mean + config_.rho * (state_ - config_.mean) +
             rng.normal(0.0, config_.noise_sd);
  }
  state_ = std::max(config_.floor, state_);
  return state_;
}

std::unique_ptr<BandwidthModel> GaussMarkovBandwidth::clone() const {
  auto copy = std::make_unique<GaussMarkovBandwidth>(config_);
  return copy;  // fresh state: clone() is for independent rollouts
}

SteppedBandwidth::SteppedBandwidth(std::vector<Step> steps) : steps_(std::move(steps)) {
  LINGXI_ASSERT(!steps_.empty());
  LINGXI_ASSERT(steps_.front().start == 0.0);
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    LINGXI_ASSERT(steps_[i].rate > 0.0);
    if (i > 0) LINGXI_ASSERT(steps_[i].start > steps_[i - 1].start);
  }
}

Kbps SteppedBandwidth::sample(Seconds t, Rng&) {
  Kbps rate = steps_.front().rate;
  for (const Step& s : steps_) {
    if (s.start <= t) rate = s.rate;
    else break;
  }
  return rate;
}

std::unique_ptr<BandwidthModel> SteppedBandwidth::clone() const {
  return std::make_unique<SteppedBandwidth>(*this);
}

TraceBandwidth::TraceBandwidth(std::vector<Point> points) : points_(std::move(points)) {
  LINGXI_ASSERT(!points_.empty());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    LINGXI_ASSERT(points_[i].rate > 0.0);
    if (i > 0) LINGXI_ASSERT(points_[i].time > points_[i - 1].time);
  }
}

Kbps TraceBandwidth::sample(Seconds t, Rng&) {
  const Seconds length = points_.back().time;
  Seconds wrapped = t;
  if (length > 0.0 && wrapped > length) wrapped = std::fmod(wrapped, length);
  // Last point at or before `wrapped`.
  Kbps rate = points_.front().rate;
  for (const Point& p : points_) {
    if (p.time <= wrapped) rate = p.rate;
    else break;
  }
  return rate;
}

std::unique_ptr<BandwidthModel> TraceBandwidth::clone() const {
  return std::make_unique<TraceBandwidth>(*this);
}

}  // namespace lingxi::trace
