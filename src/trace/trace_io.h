// Text trace file I/O.
//
// Format: one "<time_seconds> <kbps>" pair per line; '#' starts a comment.
// This is the de-facto format of public ABR trace datasets (FCC / HSDPA
// style), so recorded traces can be dropped in for the synthetic models.
#pragma once

#include <string>
#include <vector>

#include "common/expected.h"
#include "trace/bandwidth.h"

namespace lingxi::trace {

/// Parse a trace from file. Fails with kIo / kParse.
Expected<std::vector<TraceBandwidth::Point>> load_trace_file(const std::string& path);

/// Parse a trace from an in-memory string (used by tests).
Expected<std::vector<TraceBandwidth::Point>> parse_trace(const std::string& text);

/// Write a trace to file.
Status save_trace_file(const std::string& path,
                       const std::vector<TraceBandwidth::Point>& points);

}  // namespace lingxi::trace
