#include "trace/population.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/assert.h"

namespace lingxi::trace {

std::unique_ptr<BandwidthModel> NetworkProfile::make_session_model() const {
  GaussMarkovBandwidth::Config c;
  c.mean = mean_bandwidth;
  c.rho = rho;
  // Innovation sd chosen so the stationary sd equals relative_sd * mean.
  const double stationary_sd = relative_sd * mean_bandwidth;
  c.noise_sd = stationary_sd * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  c.floor = std::max(10.0, 0.05 * mean_bandwidth);
  return std::make_unique<GaussMarkovBandwidth>(c);
}

PopulationModel::PopulationModel() : config_(Config{}) {}

NetworkProfile PopulationModel::sample(Rng& rng) const {
  NetworkProfile p;
  const double mu = std::log(config_.median_bandwidth);
  p.mean_bandwidth = std::clamp(rng.lognormal(mu, config_.sigma), config_.min_bandwidth,
                                config_.max_bandwidth);
  p.relative_sd = config_.relative_sd;
  p.rho = config_.rho;
  return p;
}

std::vector<NetworkProfile> PopulationModel::sample_many(std::size_t n, Rng& rng) const {
  std::vector<NetworkProfile> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(rng));
  return out;
}

std::size_t bandwidth_bucket(Kbps bw, std::size_t bucket_count) noexcept {
  LINGXI_DASSERT(bucket_count >= 2);
  const auto bucket = static_cast<std::size_t>(std::max(0.0, bw) / 2000.0);
  return std::min(bucket, bucket_count - 1);
}

std::string bucket_label(std::size_t bucket, std::size_t bucket_count) {
  LINGXI_ASSERT(bucket < bucket_count);
  const auto lo = bucket * 2;
  if (bucket == bucket_count - 1) return std::to_string(lo) + "+ Mbps";
  return std::to_string(lo) + "-" + std::to_string(lo + 2) + " Mbps";
}

}  // namespace lingxi::trace
