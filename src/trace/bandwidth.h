// Bandwidth models.
//
// The algorithms only ever observe throughput samples, so any source that
// produces a (time -> kbps) series can stand in for the paper's production
// network logs. Implementations:
//   * ConstantBandwidth   — degenerate, for unit tests
//   * NormalBandwidth     — iid N(mu, sigma^2); exactly the model the paper
//                           uses inside Monte Carlo rollouts (Eq. 3)
//   * GaussMarkovBandwidth— AR(1) around a user mean; intra-session dynamics
//                           for the synthetic production environment
//   * SteppedBandwidth    — piecewise-constant schedule (outage injection)
//   * TraceBandwidth      — replay of a recorded (time, kbps) trace, looping
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lingxi::trace {

/// Source of throughput samples. `sample(t)` returns the throughput the
/// client would experience for a download starting at media time t.
class BandwidthModel {
 public:
  virtual ~BandwidthModel() = default;
  virtual Kbps sample(Seconds t, Rng& rng) = 0;
  /// Fresh copy with independent internal state (AR(1) models are stateful).
  virtual std::unique_ptr<BandwidthModel> clone() const = 0;
};

class ConstantBandwidth final : public BandwidthModel {
 public:
  explicit ConstantBandwidth(Kbps rate);
  Kbps sample(Seconds t, Rng& rng) override;
  std::unique_ptr<BandwidthModel> clone() const override;

 private:
  Kbps rate_;
};

/// iid normal samples, truncated below at `floor` so throughput stays positive.
class NormalBandwidth final : public BandwidthModel {
 public:
  NormalBandwidth(Kbps mean, Kbps sd, Kbps floor = 10.0);
  Kbps sample(Seconds t, Rng& rng) override;
  std::unique_ptr<BandwidthModel> clone() const override;

  Kbps mean() const noexcept { return mean_; }
  Kbps sd() const noexcept { return sd_; }

 private:
  Kbps mean_, sd_, floor_;
};

/// AR(1): x_{k+1} = mean + rho * (x_k - mean) + noise. Produces the bursty
/// but mean-reverting behaviour of real radio links.
class GaussMarkovBandwidth final : public BandwidthModel {
 public:
  struct Config {
    Kbps mean = 5000.0;
    double rho = 0.9;        ///< correlation between consecutive samples
    Kbps noise_sd = 800.0;   ///< innovation standard deviation
    Kbps floor = 50.0;
  };
  explicit GaussMarkovBandwidth(Config config);
  Kbps sample(Seconds t, Rng& rng) override;
  std::unique_ptr<BandwidthModel> clone() const override;

 private:
  Config config_;
  Kbps state_;
  bool started_ = false;
};

/// Piecewise-constant schedule; each step is (start_time, rate). Steps must
/// be sorted ascending and start at t=0. Used to inject outages/drops.
class SteppedBandwidth final : public BandwidthModel {
 public:
  struct Step {
    Seconds start;
    Kbps rate;
  };
  explicit SteppedBandwidth(std::vector<Step> steps);
  Kbps sample(Seconds t, Rng& rng) override;
  std::unique_ptr<BandwidthModel> clone() const override;

 private:
  std::vector<Step> steps_;
};

/// Replays a recorded trace of (timestamp, kbps) points with linear hold
/// (sample at t takes the last point at or before t), looping at the end.
class TraceBandwidth final : public BandwidthModel {
 public:
  struct Point {
    Seconds time;
    Kbps rate;
  };
  /// Requires a non-empty, time-sorted trace with positive rates.
  explicit TraceBandwidth(std::vector<Point> points);
  Kbps sample(Seconds t, Rng& rng) override;
  std::unique_ptr<BandwidthModel> clone() const override;

  Seconds span() const noexcept { return points_.back().time; }
  const std::vector<Point>& points() const noexcept { return points_; }

 private:
  std::vector<Point> points_;
};

}  // namespace lingxi::trace
