#include "core/lingxi.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "trace/bandwidth.h"

namespace lingxi::core {

LingXiConfig::LingXiConfig() {
  // The paper's production integration tunes HYB's beta only; callers
  // targeting MPC/Pensieve flip the space flags.
  space.optimize_stall = true;
  space.optimize_switch = true;
  space.optimize_beta = false;
}

LingXi::LingXi(LingXiConfig config, predictor::HybridExitPredictor predictor,
               trace::BitrateLadder ladder)
    : config_(std::move(config)),
      predictor_(std::move(predictor)),
      ladder_(std::move(ladder)),
      current_params_(config_.default_params) {
  LINGXI_ASSERT(config_.obo_rounds >= 1);
  LINGXI_ASSERT(config_.space.dimensions() >= 1);
}

void LingXi::begin_session() { engagement_.begin_session(); }

void LingXi::on_segment(const sim::SegmentRecord& segment) {
  engagement_.on_segment(segment, config_.segment_duration);
  bandwidth_window_.push_back(segment.throughput);
  if (bandwidth_window_.size() > config_.bandwidth_window) bandwidth_window_.pop_front();
  if (segment.stall_time > config_.virtual_session.stall_event_threshold) {
    ++stalls_since_optimization_;
  }
}

void LingXi::end_session(bool exited_during_stall) {
  if (exited_during_stall) engagement_.on_stall_exit();
}

bool LingXi::should_optimize() const noexcept {
  return stalls_since_optimization_ > config_.trigger_stall_threshold;
}

std::pair<Kbps, Kbps> LingXi::bandwidth_estimate() const {
  if (bandwidth_window_.empty()) return {0.0, 0.0};
  double mean = 0.0;
  for (Kbps b : bandwidth_window_) mean += b;
  mean /= static_cast<double>(bandwidth_window_.size());
  double var = 0.0;
  for (Kbps b : bandwidth_window_) var += (b - mean) * (b - mean);
  var /= static_cast<double>(bandwidth_window_.size());
  return {mean, std::sqrt(var)};
}

std::optional<abr::QoeParams> LingXi::maybe_optimize(abr::AbrAlgorithm& abr,
                                                     Seconds current_buffer, Rng& rng) {
  if (!should_optimize()) return std::nullopt;
  ++stats_.triggers;
  stalls_since_optimization_ = 0;

  auto [bw_mean, bw_sd] = bandwidth_estimate();
  if (bw_mean <= 0.0) return std::nullopt;  // no bandwidth signal yet

  // Pre-playback pruning: when mu - 3*sigma clears the ladder top, stall
  // probability is negligible and personalization has nothing to gain.
  if (config_.enable_preplay_pruning && bw_mean - 3.0 * bw_sd > ladder_.max_bitrate()) {
    ++stats_.pruned_preplay;
    return std::nullopt;
  }
  ++stats_.optimizations_run;

  // OBO.init(x*, N, S, E_player): warm-start from the current parameters —
  // the previous optimum once one exists, the defaults otherwise. The warm
  // start is evaluated first, so on a flat exit-rate landscape the system
  // keeps its current behaviour instead of drifting to an arbitrary point.
  bayesopt::OnlineBayesOpt obo(config_.space.dimensions(), config_.obo);
  obo.warm_start(config_.space.to_unit(current_params_));

  const sim::MonteCarloEvaluator evaluator(config_.monte_carlo, config_.virtual_session);
  // One VBR-jittered virtual video shared by every candidate: rollouts see
  // realistic segment-size spikes while the comparison stays paired.
  const trace::Video virtual_video =
      evaluator.make_virtual_video(ladder_, config_.segment_duration, &rng);
  const Kbps rollout_mean =
      std::max(50.0, bw_mean - config_.rollout_pessimism * bw_sd);
  std::unique_ptr<trace::BandwidthModel> bandwidth_model;
  if (config_.rollout_rho > 0.0) {
    trace::GaussMarkovBandwidth::Config gm;
    gm.mean = rollout_mean;
    gm.rho = config_.rollout_rho;
    gm.noise_sd = bw_sd * std::sqrt(std::max(0.0, 1.0 - gm.rho * gm.rho));
    gm.floor = std::max(10.0, 0.05 * rollout_mean);
    bandwidth_model = std::make_unique<trace::GaussMarkovBandwidth>(gm);
  } else {
    bandwidth_model =
        std::make_unique<trace::NormalBandwidth>(rollout_mean, std::max(0.0, bw_sd));
  }

  double best_exit = std::numeric_limits<double>::infinity();
  abr::QoeParams best_params = current_params_;
  double incumbent_exit = std::numeric_limits<double>::infinity();

  // One exit-model factory for every candidate: each Monte Carlo rollout
  // gets a private PredictorExitModel seeded from the live engagement state
  // (Algorithm 2 line 3), and with monte_carlo.batch_size > 1 the rollouts
  // advance in lockstep with the predictor forwards batched across them.
  const predictor::BatchPredictorExitEvaluator exit_eval(predictor_, engagement_,
                                                         config_.segment_duration);

  const bool fixed_mode = !config_.fixed_candidates.empty();
  // Round 0 always evaluates the incumbent (the OBO warm start does this
  // implicitly; in fixed-candidate mode we prepend it).
  const std::size_t rounds =
      fixed_mode ? config_.fixed_candidates.size() + 1 : config_.obo_rounds;

  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<double> x;
    abr::QoeParams candidate;
    if (fixed_mode) {
      candidate = round == 0 ? current_params_
                             : config_.space.clamp(config_.fixed_candidates[round - 1]);
    } else {
      x = obo.next_candidate(rng);
      candidate = config_.space.from_unit(x, config_.default_params);
    }

    // Rollout prototype carrying the candidate objective; each rollout
    // clones it.
    auto rollout_abr = abr.clone();
    rollout_abr->set_params(candidate);

    // The incumbent round is never pruned: its estimate is the adoption
    // baseline and must be complete.
    const double prune_bound =
        round == 0 ? std::numeric_limits<double>::infinity() : best_exit;
    const sim::MonteCarloResult mc =
        evaluator.evaluate_rollouts(virtual_video, *rollout_abr, exit_eval,
                                    *bandwidth_model, current_buffer, prune_bound, rng);
    ++stats_.mc_evaluations;
    if (mc.pruned) ++stats_.mc_rollouts_pruned;

    if (round == 0) incumbent_exit = mc.exit_rate;
    if (!fixed_mode) obo.update(x, mc.exit_rate);
    if (mc.exit_rate < best_exit) {
      best_exit = mc.exit_rate;
      best_params = candidate;
    }
  }

  // Adopt the challenger only on clear evidence of improvement.
  if (best_exit < incumbent_exit * (1.0 - config_.adoption_margin)) {
    current_params_ = best_params;
  }
  has_optimized_ = true;
  abr.set_params(current_params_);  // ABR.update(x*)
  return current_params_;
}

logstore::UserState LingXi::snapshot() const {
  logstore::UserState s;
  s.engagement = engagement_.long_term();
  s.best_params = current_params_;
  s.has_params = has_optimized_;
  return s;
}

void LingXi::restore(const logstore::UserState& state) {
  engagement_.restore_long_term(state.engagement);
  if (state.has_params) {
    current_params_ = config_.space.clamp(state.best_params);
    has_optimized_ = true;
  }
}

}  // namespace lingxi::core
