#include "core/lingxi.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "obs/metrics.h"
#include "trace/bandwidth.h"

namespace lingxi::core {

LingXiConfig::LingXiConfig() {
  // The paper's production integration tunes HYB's beta only; callers
  // targeting MPC/Pensieve flip the space flags.
  space.optimize_stall = true;
  space.optimize_switch = true;
  space.optimize_beta = false;
}

LingXi::LingXi(LingXiConfig config, const predictor::HybridExitPredictor& predictor,
               trace::BitrateLadder ladder)
    : config_(std::move(config)),
      predictor_(&predictor),
      ladder_(std::move(ladder)),
      current_params_(config_.default_params) {
  LINGXI_ASSERT(config_.obo_rounds >= 1);
  LINGXI_ASSERT(config_.space.dimensions() >= 1);
}

void LingXi::begin_session() { engagement_.begin_session(); }

void LingXi::on_segment(const sim::SegmentRecord& segment) {
  engagement_.on_segment(segment, config_.segment_duration);
  bandwidth_window_.push_back(segment.throughput);
  if (bandwidth_window_.size() > config_.bandwidth_window) bandwidth_window_.pop_front();
  if (segment.stall_time > config_.virtual_session.stall_event_threshold) {
    ++stalls_since_optimization_;
  }
}

void LingXi::end_session(bool exited_during_stall) {
  if (exited_during_stall) engagement_.on_stall_exit();
}

bool LingXi::should_optimize() const noexcept {
  return stalls_since_optimization_ > config_.trigger_stall_threshold;
}

std::pair<Kbps, Kbps> LingXi::bandwidth_estimate() const {
  if (bandwidth_window_.empty()) return {0.0, 0.0};
  double mean = 0.0;
  for (Kbps b : bandwidth_window_) mean += b;
  mean /= static_cast<double>(bandwidth_window_.size());
  double var = 0.0;
  for (Kbps b : bandwidth_window_) var += (b - mean) * (b - mean);
  var /= static_cast<double>(bandwidth_window_.size());
  return {mean, std::sqrt(var)};
}

std::unique_ptr<LingXi::OptimizationRun> LingXi::begin_optimization(
    abr::AbrAlgorithm& abr, Seconds current_buffer, Rng& rng,
    predictor::ExitQueryPool* pool, std::uint32_t user_tag) {
  if (!should_optimize()) return nullptr;
  ++stats_.triggers;
  stalls_since_optimization_ = 0;

  auto [bw_mean, bw_sd] = bandwidth_estimate();
  if (bw_mean <= 0.0) return nullptr;  // no bandwidth signal yet

  // Pre-playback pruning: when mu - 3*sigma clears the ladder top, stall
  // probability is negligible and personalization has nothing to gain.
  if (config_.enable_preplay_pruning && bw_mean - 3.0 * bw_sd > ladder_.max_bitrate()) {
    ++stats_.pruned_preplay;
    return nullptr;
  }
  ++stats_.optimizations_run;
  return std::unique_ptr<OptimizationRun>(new OptimizationRun(
      *this, abr, current_buffer, rng, pool, user_tag, bw_mean, bw_sd));
}

std::optional<abr::QoeParams> LingXi::maybe_optimize(abr::AbrAlgorithm& abr,
                                                     Seconds current_buffer, Rng& rng,
                                                     predictor::ExitQueryPool* pool,
                                                     std::uint32_t user_tag) {
  const auto run = begin_optimization(abr, current_buffer, rng, pool, user_tag);
  if (run == nullptr) return std::nullopt;
  // Drive the run to completion inline. Without a pool each wave flushes
  // its own parked queries; with one, flush it between steps — either way
  // the flush scope is a single optimization (the per-optimization batching
  // baseline the cross-user scheduler is measured against).
  while (!run->step()) {
    if (pool != nullptr) pool->flush();
  }
  return current_params_;
}

LingXi::OptimizationRun::OptimizationRun(LingXi& owner, abr::AbrAlgorithm& abr,
                                         Seconds current_buffer, Rng& rng,
                                         predictor::ExitQueryPool* pool,
                                         std::uint32_t user_tag, Kbps bw_mean, Kbps bw_sd)
    : owner_(owner),
      abr_(abr),
      rng_(rng),
      current_buffer_(current_buffer),
      evaluator_(owner.config_.monte_carlo, owner.config_.virtual_session),
      // One VBR-jittered virtual video shared by every candidate: rollouts
      // see realistic segment-size spikes while the comparison stays paired.
      virtual_video_(
          evaluator_.make_virtual_video(owner.ladder_, owner.config_.segment_duration, &rng)),
      // One exit-model factory for every candidate: each Monte Carlo rollout
      // gets a private PredictorExitModel seeded from the live engagement
      // state (Algorithm 2 line 3); stalled queries park for batched
      // forwards, pooled across users when `pool` is set.
      exit_eval_(*owner.predictor_, owner.engagement_, owner.config_.segment_duration, pool,
                 user_tag),
      obo_(owner.config_.space.dimensions(), owner.config_.obo),
      fixed_mode_(!owner.config_.fixed_candidates.empty()),
      // Round 0 always evaluates the incumbent (the OBO warm start does this
      // implicitly; in fixed-candidate mode we prepend it).
      rounds_(fixed_mode_ ? owner.config_.fixed_candidates.size() + 1
                          : owner.config_.obo_rounds),
      best_exit_(std::numeric_limits<double>::infinity()),
      best_params_(owner.current_params_),
      incumbent_exit_(std::numeric_limits<double>::infinity()) {
  sequential_ = pool == nullptr && owner.config_.monte_carlo.batch_size <= 1;
  // OBO.init(x*, N, S, E_player): warm-start from the current parameters —
  // the previous optimum once one exists, the defaults otherwise. The warm
  // start is evaluated first, so on a flat exit-rate landscape the system
  // keeps its current behaviour instead of drifting to an arbitrary point.
  obo_.warm_start(owner.config_.space.to_unit(owner.current_params_));

  const Kbps rollout_mean =
      std::max(50.0, bw_mean - owner.config_.rollout_pessimism * bw_sd);
  if (owner.config_.rollout_rho > 0.0) {
    trace::GaussMarkovBandwidth::Config gm;
    gm.mean = rollout_mean;
    gm.rho = owner.config_.rollout_rho;
    gm.noise_sd = bw_sd * std::sqrt(std::max(0.0, 1.0 - gm.rho * gm.rho));
    gm.floor = std::max(10.0, 0.05 * rollout_mean);
    bandwidth_model_ = std::make_unique<trace::GaussMarkovBandwidth>(gm);
  } else {
    bandwidth_model_ =
        std::make_unique<trace::NormalBandwidth>(rollout_mean, std::max(0.0, bw_sd));
  }
}

void LingXi::OptimizationRun::begin_candidate() {
  if (fixed_mode_) {
    candidate_ = round_ == 0
                     ? owner_.current_params_
                     : owner_.config_.space.clamp(owner_.config_.fixed_candidates[round_ - 1]);
  } else {
    x_ = obo_.next_candidate(rng_);
    candidate_ = owner_.config_.space.from_unit(x_, owner_.config_.default_params);
  }
  // Rollout prototype carrying the candidate objective; each rollout clones
  // it.
  rollout_abr_ = abr_.clone();
  rollout_abr_->set_params(candidate_);
}

double LingXi::OptimizationRun::prune_bound() const noexcept {
  // The incumbent round is never pruned: its estimate is the adoption
  // baseline and must be complete.
  return round_ == 0 ? std::numeric_limits<double>::infinity() : best_exit_;
}

void LingXi::OptimizationRun::start_wave() {
  wave_ = std::make_unique<sim::RolloutWave>(evaluator_, virtual_video_, *rollout_abr_,
                                             exit_eval_, *bandwidth_model_, current_buffer_,
                                             prune_bound(), rng_);
}

void LingXi::OptimizationRun::finish_round(const sim::MonteCarloResult& mc) {
  if (obs::Registry* reg = obs::Registry::active()) {
    reg->add("core.optimization.rounds");
    if (mc.pruned) reg->add("core.optimization.rounds_pruned");
  }
  ++owner_.stats_.mc_evaluations;
  if (mc.pruned) ++owner_.stats_.mc_rollouts_pruned;
  if (round_ == 0) incumbent_exit_ = mc.exit_rate;
  if (!fixed_mode_) obo_.update(x_, mc.exit_rate);
  if (mc.exit_rate < best_exit_) {
    best_exit_ = mc.exit_rate;
    best_params_ = candidate_;
  }
}

void LingXi::OptimizationRun::finish() {
  // Adopt the challenger only on clear evidence of improvement.
  if (best_exit_ < incumbent_exit_ * (1.0 - owner_.config_.adoption_margin)) {
    owner_.current_params_ = best_params_;
  }
  owner_.has_optimized_ = true;
  abr_.set_params(owner_.current_params_);  // ABR.update(x*)
  done_ = true;
}

bool LingXi::OptimizationRun::step() {
  if (done_) return true;
  if (sequential_) {
    // No parking possible: run the whole candidate loop through the
    // sequential whole-session rollout path (bitwise identical to the wave
    // path, without its stepping overhead) and finish in one step.
    while (round_ < rounds_) {
      begin_candidate();
      const sim::MonteCarloResult mc = evaluator_.evaluate_rollouts(
          virtual_video_, *rollout_abr_, exit_eval_, *bandwidth_model_, current_buffer_,
          prune_bound(), rng_);
      rollout_abr_.reset();
      finish_round(mc);
      ++round_;
    }
    finish();
    return true;
  }
  if (pending_fit_) {
    // A driver that ignores fit parking keeps making progress: run the
    // parked fit inline, exactly where the un-parked path would have.
    run_fit();
  }
  for (;;) {
    if (done_) return true;
    if (wave_ != nullptr) {
      if (!wave_->step()) return false;  // parked on predictor queries
      pending_mc_ = wave_->take_result();
      wave_.reset();
      rollout_abr_.reset();
      pending_fit_ = true;
      if (fit_parking_) return false;  // parked on the round-boundary fit
      run_fit();
      continue;
    }
    // A pooled run_fit() already drew the next candidate; otherwise (first
    // round) draw it here. Wave construction always happens on this thread:
    // the RolloutWave constructor touches the shared shard predictor.
    if (rollout_abr_ == nullptr) begin_candidate();
    start_wave();
  }
}

void LingXi::OptimizationRun::run_fit() {
  LINGXI_ASSERT(pending_fit_);
  pending_fit_ = false;
  finish_round(pending_mc_);
  ++round_;
  if (round_ >= rounds_) {
    finish();
  } else {
    begin_candidate();
  }
}

LingXi::PersistentState LingXi::persistent_state() const {
  PersistentState s;
  s.engagement = engagement_.snapshot();
  s.bandwidth_window.assign(bandwidth_window_.begin(), bandwidth_window_.end());
  s.stalls_since_optimization = stalls_since_optimization_;
  s.has_optimized = has_optimized_;
  s.params = current_params_;
  s.stats = stats_;
  return s;
}

void LingXi::restore_persistent(const PersistentState& state) {
  engagement_.restore(state.engagement);
  bandwidth_window_.assign(state.bandwidth_window.begin(), state.bandwidth_window.end());
  stalls_since_optimization_ = state.stalls_since_optimization;
  has_optimized_ = state.has_optimized;
  current_params_ = state.params;
  stats_ = state.stats;
}

logstore::UserState LingXi::snapshot() const {
  logstore::UserState s;
  s.engagement = engagement_.long_term();
  s.best_params = current_params_;
  s.has_params = has_optimized_;
  return s;
}

void LingXi::restore(const logstore::UserState& state) {
  engagement_.restore_long_term(state.engagement);
  if (state.has_params) {
    current_params_ = config_.space.clamp(state.best_params);
    has_optimized_ = true;
  }
}

}  // namespace lingxi::core
