// LingXi: the user-level QoE adjustment controller (Algorithm 1).
//
// One LingXi instance accompanies one user. During playback it ingests
// per-segment records (building the engagement state and the client-side
// bandwidth distribution N(mu, sigma^2)). When the user has accumulated more
// than `trigger_stall_threshold` stall events since the last optimization,
// the next maybe_optimize() call runs one OBO round:
//
//   OBO.init(x*, N, S, E_player)
//   while sample_time < T_s:
//       x      <- OBO.next_candidate()
//       R_exit <- EvaluateParameters(x, N, S, E_player)     // Monte Carlo
//       OBO.update(x, R_exit); track the best x*
//   ABR.update(x*)
//
// Deployment behaviours from §4 are implemented here too:
//   * trigger threshold eta = 2 stall events (Fig. 8 trade-off);
//   * pre-playback pruning — skip optimization when mu - 3*sigma > Q_max
//     (stalls are statistically impossible, nothing to personalize);
//   * virtual-playback pruning — inherited from sim::MonteCarloEvaluator;
//   * durable long-term state via snapshot()/restore() (logstore).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "abr/abr.h"
#include "bayesopt/obo.h"
#include "logstore/state_store.h"
#include "predictor/hybrid.h"
#include "sim/monte_carlo.h"

namespace lingxi::core {

struct LingXiConfig {
  abr::ParamSpace space;
  abr::QoeParams default_params;
  /// eta: stall events since the last optimization needed to trigger OBO.
  std::size_t trigger_stall_threshold = 2;
  /// T_s: candidate evaluations per OBO round.
  std::size_t obo_rounds = 8;
  sim::MonteCarloConfig monte_carlo;
  sim::SessionSimulator::Config virtual_session;
  bayesopt::OnlineBayesOpt::Config obo;
  bool enable_preplay_pruning = true;
  /// Temporal correlation assumed for rollout bandwidth. 0 reproduces the
  /// paper's iid N(mu, sigma^2) draws (Eq. 3); positive values roll out an
  /// AR(1) process with the same stationary distribution, which models the
  /// sustained dips that actually cause stalls on real links.
  double rollout_rho = 0.85;
  /// Robust-control bias for rollouts: the virtual network's mean is
  /// mu - rollout_pessimism * sigma. The client window lags session-level
  /// network shifts, so evaluating candidates against a lower quantile keeps
  /// over-aggressive parameters from looking safe.
  double rollout_pessimism = 0.5;
  /// "No Negative Influence" (Table 1): a challenger is adopted only when
  /// its estimated exit rate undercuts the incumbent's estimate by this
  /// relative margin, so Monte Carlo noise cannot ratchet the user onto
  /// worse parameters. The incumbent is always evaluated first.
  double adoption_margin = 0.2;
  /// Rolling window for the client bandwidth distribution estimate.
  std::size_t bandwidth_window = 64;
  Seconds segment_duration = 1.0;
  /// L(F) mode (§5.2): when non-empty, each optimization evaluates exactly
  /// this fixed candidate list instead of OBO proposals. Empty = L(B), full
  /// Bayesian optimization.
  std::vector<abr::QoeParams> fixed_candidates;

  LingXiConfig();
};

/// Counters for the ablation benches and deployment monitoring.
struct LingXiStats {
  std::uint64_t triggers = 0;             ///< threshold crossings observed
  std::uint64_t optimizations_run = 0;    ///< OBO rounds actually executed
  std::uint64_t pruned_preplay = 0;       ///< skipped via mu-3sigma rule
  std::uint64_t mc_evaluations = 0;       ///< candidate evaluations
  std::uint64_t mc_rollouts_pruned = 0;   ///< Monte Carlo early exits
};

class LingXi {
 public:
  /// `ladder` must match the videos served to this user. `predictor` is
  /// BORROWED, not copied — forwards are pure in (weights, input) and LingXi
  /// never mutates the net, so many users can share one predictor as long as
  /// a single thread drives them (the fleet runner's per-worker clones).
  /// The caller keeps it alive for the LingXi's lifetime; copying the
  /// ~MB-scale net per user was the dominant cost of (re)building per-user
  /// state whenever chained legs or churn re-created user slots.
  LingXi(LingXiConfig config, const predictor::HybridExitPredictor& predictor,
         trace::BitrateLadder ladder);
  /// Passing a temporary predictor would dangle — hold it in a named object.
  LingXi(LingXiConfig, predictor::HybridExitPredictor&&, trace::BitrateLadder) = delete;

  /// -- live playback hooks -------------------------------------------------
  void begin_session();
  /// Feed the segment just played (drives engagement state, bandwidth model
  /// and the trigger counter).
  void on_segment(const sim::SegmentRecord& segment);
  /// The session ended; `exited_during_stall` marks a stall-driven exit
  /// (feeds the stall-exit engagement channel).
  void end_session(bool exited_during_stall);

  /// -- optimization --------------------------------------------------------
  /// True when the trigger condition (stall_count > eta) holds.
  bool should_optimize() const noexcept;

  /// One OBO round (Algorithm 1 lines 6-20) in resumable form, so a wave
  /// scheduler can interleave many users' optimizations and pool their
  /// predictor flushes. step() advances the candidate loop until every live
  /// Monte Carlo rollout has parked an exit query (returns false — with a
  /// pool, the caller must flush it before the next step()) or the round is
  /// complete (returns true; the ABR carries the final parameters).
  /// Driving a run to completion is bitwise identical to maybe_optimize()
  /// regardless of how steps interleave with other users' runs.
  class OptimizationRun {
   public:
    OptimizationRun(const OptimizationRun&) = delete;
    OptimizationRun& operator=(const OptimizationRun&) = delete;

    /// True when finished; false when parked on predictor queries — or,
    /// with fit parking enabled, on a round-boundary fit. Once finished, the
    /// live ABR carries the adopted parameters (LingXi::current_params()).
    bool step();
    bool done() const noexcept { return done_; }

    /// Fit parking: when enabled, step() parks (returns false) at every
    /// round boundary instead of running the GP observe + acquisition sweep
    /// inline, so a scheduler can pool many users' fits — run_fit() touches
    /// only this run's private state (its OBO/GP, its rng, its ABR clone),
    /// making concurrent fits of different users race-free and the results
    /// independent of which thread ran them. A step() on a parked fit runs
    /// it inline, so drivers that ignore parking still make progress.
    void enable_fit_parking() noexcept { fit_parking_ = true; }
    /// True while a round-boundary fit is parked.
    bool needs_fit() const noexcept { return pending_fit_; }
    /// Run the parked fit: GP update with the round's Monte Carlo result,
    /// then either the next candidate's acquisition sweep or the adoption
    /// decision. Wave construction stays in step() on the caller's thread
    /// (it touches the shared shard predictor).
    void run_fit();

   private:
    friend class LingXi;
    OptimizationRun(LingXi& owner, abr::AbrAlgorithm& abr, Seconds current_buffer,
                    Rng& rng, predictor::ExitQueryPool* pool, std::uint32_t user_tag,
                    Kbps bw_mean, Kbps bw_sd);
    void start_wave();
    void finish_round(const sim::MonteCarloResult& mc);
    void finish();

    /// Candidate-draw half of a round (shared by both execution paths).
    void begin_candidate();
    double prune_bound() const noexcept;

    LingXi& owner_;
    abr::AbrAlgorithm& abr_;
    Rng& rng_;
    Seconds current_buffer_;
    /// Un-pooled batch<=1 runs keep the sequential whole-session rollout
    /// path (no parking machinery): step() completes in one call. Pooled
    /// runs always use waves so even single-rollout queries cross users.
    bool sequential_;
    sim::MonteCarloEvaluator evaluator_;
    trace::Video virtual_video_;
    std::unique_ptr<trace::BandwidthModel> bandwidth_model_;
    predictor::BatchPredictorExitEvaluator exit_eval_;
    bayesopt::OnlineBayesOpt obo_;
    bool fixed_mode_;
    std::size_t rounds_;
    std::size_t round_ = 0;
    double best_exit_;
    abr::QoeParams best_params_;
    double incumbent_exit_;
    std::vector<double> x_;         ///< current candidate, unit coordinates
    abr::QoeParams candidate_;
    std::unique_ptr<abr::AbrAlgorithm> rollout_abr_;
    std::unique_ptr<sim::RolloutWave> wave_;
    /// Round result awaiting its fit while parked (fit parking only).
    sim::MonteCarloResult pending_mc_;
    bool pending_fit_ = false;
    bool fit_parking_ = false;
    bool done_ = false;
  };

  /// Begin an optimization if triggered: the trigger/bandwidth/pre-playback
  /// checks (and their stats side effects) run immediately; nullptr means no
  /// optimization happens this session. With `pool`, Monte Carlo exit
  /// queries park there under (user_tag, rollout, segment) for a fleet-wide
  /// flush between steps; without one each wave flushes itself.
  std::unique_ptr<OptimizationRun> begin_optimization(
      abr::AbrAlgorithm& abr, Seconds current_buffer, Rng& rng,
      predictor::ExitQueryPool* pool = nullptr, std::uint32_t user_tag = 0);

  /// Run one OBO round to completion if triggered. `abr` is the live
  /// algorithm: used as the rollout prototype and updated in place with the
  /// optimized parameters. `current_buffer` seeds the virtual player.
  /// Returns the new parameters when an optimization ran. `pool`, when
  /// given, scopes the predictor flushes (for batching telemetry) without
  /// changing any result.
  std::optional<abr::QoeParams> maybe_optimize(abr::AbrAlgorithm& abr,
                                               Seconds current_buffer, Rng& rng,
                                               predictor::ExitQueryPool* pool = nullptr,
                                               std::uint32_t user_tag = 0);

  /// -- state ---------------------------------------------------------------
  const abr::QoeParams& current_params() const noexcept { return current_params_; }
  const predictor::EngagementState& engagement() const noexcept { return engagement_; }
  const LingXiStats& stats() const noexcept { return stats_; }
  /// Client bandwidth distribution estimate (mean, sd) in kbps.
  std::pair<Kbps, Kbps> bandwidth_estimate() const;

  logstore::UserState snapshot() const;
  void restore(const logstore::UserState& state);

  /// Complete evolving controller state at a session boundary — everything
  /// a fleet snapshot must persist so a resumed LingXi continues bitwise
  /// identically: the full engagement snapshot (not just the durable
  /// long-term slice), the client bandwidth window in arrival order, the
  /// trigger counter, the adopted parameters and the optimizer counters.
  /// Unlike snapshot()/restore() — the production app-exit path, which
  /// re-anchors interval clocks and clamps parameters — restore_persistent
  /// is exact by construction (no clamping, no re-anchoring); the config
  /// and predictor are NOT part of the state and must be reconstructed
  /// equal by the caller (the fleet's pure-factory contract).
  struct PersistentState {
    predictor::EngagementState::Snapshot engagement;
    std::vector<Kbps> bandwidth_window;  ///< oldest first
    std::uint64_t stalls_since_optimization = 0;
    bool has_optimized = false;
    abr::QoeParams params;
    LingXiStats stats;
  };

  PersistentState persistent_state() const;
  void restore_persistent(const PersistentState& state);

 private:
  LingXiConfig config_;
  const predictor::HybridExitPredictor* predictor_;  ///< borrowed, never null
  trace::BitrateLadder ladder_;
  predictor::EngagementState engagement_;
  abr::QoeParams current_params_;
  bool has_optimized_ = false;
  std::size_t stalls_since_optimization_ = 0;
  std::deque<Kbps> bandwidth_window_;
  LingXiStats stats_;
};

}  // namespace lingxi::core
