// Fleet telemetry archives — the on-disk capture format and its reader.
//
// An archive is a directory holding one manifest plus N shard files, all
// built from the framed-record primitive of logstore/record.h (magic "LXRC"
// | u32 version | u32 payload_len | payload | u32 crc32(payload)), so every
// corruption mode surfaces as Error::kCorrupt.
//
// ## Archive format spec (version 1)
//
//   <dir>/manifest.lxa     one framed record
//   <dir>/shard-NNNN.lxs   framed telemetry records for users
//                          [NNNN * users_per_shard, (NNNN+1) * users_per_shard)
//
// Manifest payload (little-endian, logstore primitive codecs):
//   u32 format_version   kArchiveFormatVersion
//   u64 seed             fleet seed the archive was captured at
//   u32 config_digest    CRC32 over the result-shaping FleetConfig fields
//                        (never threads / users_per_shard: those do not
//                        change the captured bytes)
//   u64 users, days, sessions_per_user_day, warmup_sessions,
//       intervention_day
//   u32 enable_lingxi    0/1
//   u64 users_per_shard  archive sharding granularity (users per shard file)
//   u64 shard_count
//   per shard:           u64 first_user | u64 user_count |
//                        u64 record_count | u64 byte_count
//
// Shard record payload, discriminated by a leading u32 type tag:
//   kSessionRecord (1):  u64 user | u32 day | u32 session_in_day |
//                        u32 measured | f64 stall_penalty |
//                        f64 switch_penalty | f64 hyb_beta |
//                        logstore::encode_session(entry) bytes to the end
//   kUserRecord (2):     u64 user | f64 tolerable_stall | u64 adjusted_days |
//                        u64 triggers | u64 optimizations | u64 pruned_preplay |
//                        u64 mc_evaluations | u64 mc_rollouts_pruned
//
// Within a shard, records are user-major in ascending user order; a user's
// sessions appear in chronological (day, session) order and are followed by
// that user's kUserRecord. The embedded SessionLogEntry carries
// timestamp = day * 86400 + session_in_day, so generic logstore tooling can
// recover the fleet calendar.
//
// Because the layout is a pure function of (fleet config, seed), the archive
// is byte-for-byte identical at any worker-thread count and any runner shard
// size — the property test_telemetry.cpp asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "abr/qoe.h"
#include "common/expected.h"
#include "core/lingxi.h"
#include "logstore/session_log.h"
#include "sim/fleet_runner.h"

namespace lingxi::telemetry {

inline constexpr std::uint32_t kArchiveFormatVersion = 1;

/// Decoded kSessionRecord.
struct ArchiveSessionRecord {
  std::uint64_t user = 0;
  std::uint32_t day = 0;
  std::uint32_t session_in_day = 0;
  bool measured = false;
  abr::QoeParams params_after;
  logstore::SessionLogEntry entry;
};

/// Decoded kUserRecord.
struct ArchiveUserRecord {
  std::uint64_t user = 0;
  double tolerable_stall = 0.0;
  std::uint64_t adjusted_days = 0;
  core::LingXiStats stats;
};

struct ArchiveShardInfo {
  std::uint64_t first_user = 0;
  std::uint64_t user_count = 0;
  std::uint64_t record_count = 0;
  std::uint64_t byte_count = 0;
};

struct ArchiveManifest {
  std::uint64_t seed = 0;
  std::uint32_t config_digest = 0;
  std::uint64_t users = 0;
  std::uint64_t days = 0;
  std::uint64_t sessions_per_user_day = 0;
  std::uint64_t warmup_sessions = 0;
  std::uint64_t intervention_day = 0;
  bool enable_lingxi = false;
  std::uint64_t users_per_shard = 0;  ///< archive granularity, not the runner's
  std::vector<ArchiveShardInfo> shards;

  std::vector<unsigned char> encode() const;
  static Expected<ArchiveManifest> decode(const std::vector<unsigned char>& payload);
};

/// Digest of the FleetConfig fields that shape captured results. Excludes
/// pure scheduling knobs (threads, users_per_shard) by design.
std::uint32_t config_digest(const sim::FleetConfig& config);

/// File names inside an archive directory.
std::string manifest_filename();
std::string shard_filename(std::size_t shard_index);

/// Shard record codecs (exposed for tests).
std::vector<unsigned char> encode_session_record(const ArchiveSessionRecord& rec);
std::vector<unsigned char> encode_user_record(const ArchiveUserRecord& rec);

/// An archive materialized in memory: the deterministic output of a capture
/// (telemetry/capture.h), ready to be written out or checksummed.
struct FleetArchive {
  ArchiveManifest manifest;
  /// Framed record stream per shard, index-aligned with manifest.shards.
  std::vector<std::vector<unsigned char>> shards;

  /// Write manifest + shard files into `dir` (created if missing).
  Status write(const std::string& dir) const;
  /// CRC32 over the manifest payload and every shard byte stream in order —
  /// the determinism probe used by tests and benches.
  std::uint32_t checksum() const;
  std::uint64_t total_bytes() const noexcept;
};

/// Streams archives back without materializing whole files: records are read
/// frame by frame from disk, CRC-validated, and handed to callbacks.
class ArchiveReader {
 public:
  using SessionCallback = std::function<void(const ArchiveSessionRecord&)>;
  using UserCallback = std::function<void(const ArchiveUserRecord&)>;

  static Expected<ArchiveReader> open(const std::string& dir);

  const ArchiveManifest& manifest() const noexcept { return manifest_; }

  /// Full scan over every shard, in user order. Either callback may be null.
  Status scan(const SessionCallback& on_session, const UserCallback& on_user) const;

  /// Scan users in [first_user, last_user]. Only the shard files whose user
  /// range intersects are opened, and non-matching records inside them are
  /// skipped after decoding the fixed prefix only.
  Status scan_users(std::uint64_t first_user, std::uint64_t last_user,
                    const SessionCallback& on_session, const UserCallback& on_user) const;

  /// Scan session records for days in [first_day, last_day]. All shards are
  /// streamed, but out-of-range records are skipped without decoding their
  /// per-segment trajectories.
  Status scan_days(std::uint32_t first_day, std::uint32_t last_day,
                   const SessionCallback& on_session) const;

 private:
  ArchiveReader(std::string dir, ArchiveManifest manifest)
      : dir_(std::move(dir)), manifest_(std::move(manifest)) {}

  Status scan_shard(std::size_t shard_index, std::uint64_t first_user,
                    std::uint64_t last_user, std::uint32_t first_day,
                    std::uint32_t last_day, const SessionCallback& on_session,
                    const UserCallback& on_user) const;

  std::string dir_;
  ArchiveManifest manifest_;
};

}  // namespace lingxi::telemetry
