// Replay: recompute the offline analyses from a fleet archive instead of
// live simulation (the "analyze many times" half of capture-once /
// query-many).
//
// One streaming pass over an archive rebuilds:
//   * a sim::FleetAccumulator that is bitwise identical (checksum()) to the
//     accumulator the live FleetRunner produced at capture time — the proof
//     that nothing was lost on the way to disk;
//   * per-day analytics::MetricAccumulator series (Fig. 12 A/B deltas);
//   * per-user-day records (stall exit rate vs assigned parameter, Figs.
//     13/14);
//   * per-stall-event trajectories (Fig. 15), opt-in;
//   * watch-time samples and exit-rate-vs-stall-time bins (Figs. 3/4-style
//     QoS binning).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/experiment.h"
#include "analytics/metrics.h"
#include "common/expected.h"
#include "sim/fleet_runner.h"
#include "telemetry/archive.h"

namespace lingxi::telemetry {

/// Options for Replay::run. (A namespace-scope struct so it can serve as a
/// defaulted argument; nested classes with default member initializers
/// cannot.)
struct ReplayOptions {
  bool collect_user_days = true;
  bool collect_stall_events = false;
  bool collect_watch_times = false;
  /// Stall shorter than this is sub-perceptual (matches
  /// analytics/experiment.cpp).
  double stall_threshold = 0.05;
  /// Upper edges of the exit_by_stall bins; the last bin is open-ended.
  std::vector<double> stall_bin_edges = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
};

/// Exit-rate within one bin of per-session stall time.
struct QosBin {
  double stall_lo = 0.0;  ///< inclusive
  double stall_hi = 0.0;  ///< exclusive (last bin: +inf)
  std::uint64_t sessions = 0;
  std::uint64_t exits = 0;
  double exit_rate() const noexcept {
    return sessions == 0 ? 0.0
                         : static_cast<double>(exits) / static_cast<double>(sessions);
  }
};

struct ReplayResult {
  /// Bitwise reconstruction of the live run's accumulator.
  sim::FleetAccumulator fleet;
  /// Per-day aggregates, indexed by day (size == manifest.days).
  std::vector<analytics::MetricAccumulator> daily;
  /// One record per (user, day), user-major.
  std::vector<analytics::UserDayRecord> user_days;
  /// Per-stall-event trajectories; filled only when
  /// Options::collect_stall_events.
  std::vector<analytics::StallEventRecord> stall_events;
  /// Per-session watch time, seconds, in archive (user-major) order.
  std::vector<double> watch_times;
  /// Sessions binned by total stall time (Fig. 4-style exit-rate-vs-QoS).
  std::vector<QosBin> exit_by_stall;
};

class Replay {
 public:
  using Options = ReplayOptions;

  /// One streaming pass over the archive.
  static Expected<ReplayResult> run(const ArchiveReader& reader, Options options = {});
  /// Convenience: open `dir` and replay it.
  static Expected<ReplayResult> run(const std::string& dir, Options options = {});
};

// A/B deltas between two replayed archives: feed the `daily` series of each
// arm to analytics::relative_daily_gap (the vector overload).

}  // namespace lingxi::telemetry
