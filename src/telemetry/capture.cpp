#include "telemetry/capture.h"

#include <algorithm>

#include "common/assert.h"
#include "logstore/record.h"

namespace lingxi::telemetry {

namespace {
constexpr std::uint64_t kSecondsPerDay = 86400;
}

ShardedCapture::ShardedCapture() : ShardedCapture(Config{}) {}

ShardedCapture::ShardedCapture(Config config) : config_(config) {
  LINGXI_ASSERT(config_.users_per_shard > 0);
}

void ShardedCapture::begin_fleet(const sim::FleetConfig& config, std::uint64_t seed) {
  manifest_ = ArchiveManifest{};
  manifest_.seed = seed;
  manifest_.config_digest = config_digest(config);
  manifest_.users = config.users;
  manifest_.days = config.days;
  manifest_.sessions_per_user_day = config.sessions_per_user_day;
  manifest_.warmup_sessions = config.warmup_sessions;
  manifest_.intervention_day = config.intervention_day;
  manifest_.enable_lingxi = config.enable_lingxi;
  manifest_.users_per_shard = config_.users_per_shard;
  users_.assign(config.users, CaptureCursor{});
}

void ShardedCapture::record_session(const SessionContext& ctx,
                                    const sim::SessionResult& session) {
  LINGXI_ASSERT(ctx.user_index < users_.size());
  ArchiveSessionRecord rec;
  rec.user = ctx.user_index;
  rec.day = static_cast<std::uint32_t>(ctx.day);
  rec.session_in_day = static_cast<std::uint32_t>(ctx.session_in_day);
  rec.measured = ctx.measured;
  rec.params_after = ctx.params_after;
  rec.entry.user_id = ctx.user_index;
  rec.entry.timestamp = ctx.day * kSecondsPerDay + ctx.session_in_day;
  rec.entry.video_duration = ctx.video_duration;
  rec.entry.session = session;
  CaptureCursor& buffer = users_[ctx.user_index];
  // Cross-user waves interleave users, never one user's sessions: records
  // for a user must arrive in strictly increasing (day, session) order or
  // the archive bytes would depend on the schedule.
  const std::uint64_t at =
      (static_cast<std::uint64_t>(ctx.day) << 32) | static_cast<std::uint64_t>(ctx.session_in_day);
  LINGXI_DASSERT(at >= buffer.next_expected_at_least);
  buffer.next_expected_at_least = at + 1;
  logstore::write_record(buffer.bytes, encode_session_record(rec));
  ++buffer.records;
}

void ShardedCapture::record_user(const UserTelemetry& user) {
  LINGXI_ASSERT(user.user_index < users_.size());
  ArchiveUserRecord rec;
  rec.user = user.user_index;
  rec.tolerable_stall = user.tolerable_stall;
  rec.adjusted_days = user.adjusted_days;
  rec.stats = user.stats;
  CaptureCursor& buffer = users_[user.user_index];
  logstore::write_record(buffer.bytes, encode_user_record(rec));
  ++buffer.records;
}

FleetArchive ShardedCapture::finish() const {
  FleetArchive archive;
  archive.manifest = manifest_;
  const std::size_t shard_count =
      (users_.size() + config_.users_per_shard - 1) / config_.users_per_shard;
  archive.manifest.shards.resize(shard_count);
  archive.shards.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t first = s * config_.users_per_shard;
    const std::size_t last = std::min(first + config_.users_per_shard, users_.size());
    auto& info = archive.manifest.shards[s];
    auto& bytes = archive.shards[s];
    info.first_user = first;
    info.user_count = last - first;
    for (std::size_t u = first; u < last; ++u) {
      bytes.insert(bytes.end(), users_[u].bytes.begin(), users_[u].bytes.end());
      info.record_count += users_[u].records;
    }
    info.byte_count = bytes.size();
  }
  return archive;
}

void ShardedCapture::restore_cursors(std::vector<CaptureCursor> cursors) {
  LINGXI_ASSERT(cursors.size() == users_.size());
  users_ = std::move(cursors);
}

std::size_t ShardedCapture::session_count() const noexcept {
  std::size_t sessions = 0;
  // One of each user's records is the user summary; the rest are sessions.
  for (const auto& user : users_) {
    sessions += user.records > 0 ? user.records - 1 : 0;
  }
  return sessions;
}

}  // namespace lingxi::telemetry
