#include "telemetry/archive.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "logstore/record.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace lingxi::telemetry {
namespace {

// Shard record type tags (leading u32 of every shard record payload).
constexpr std::uint32_t kSessionRecord = 1;
constexpr std::uint32_t kUserRecord = 2;

// Fixed prefix of a kSessionRecord: type, user, day, session_in_day,
// measured, three QoE parameters. Range scans decode only this much before
// deciding whether to decode the embedded trajectory.
struct SessionPrefix {
  std::uint64_t user = 0;
  std::uint32_t day = 0;
  std::uint32_t session_in_day = 0;
  std::uint32_t measured = 0;
  abr::QoeParams params;
  std::size_t end = 0;  ///< offset of the embedded SessionLogEntry payload
};

bool decode_session_prefix(const std::vector<unsigned char>& payload, SessionPrefix& out) {
  std::size_t pos = 4;  // past the type tag
  const bool ok = logstore::get_u64(payload, pos, out.user) &&
                  logstore::get_u32(payload, pos, out.day) &&
                  logstore::get_u32(payload, pos, out.session_in_day) &&
                  logstore::get_u32(payload, pos, out.measured) &&
                  logstore::get_f64(payload, pos, out.params.stall_penalty) &&
                  logstore::get_f64(payload, pos, out.params.switch_penalty) &&
                  logstore::get_f64(payload, pos, out.params.hyb_beta);
  out.end = pos;
  return ok;
}

Expected<ArchiveSessionRecord> decode_session_record(
    const std::vector<unsigned char>& payload) {
  SessionPrefix prefix;
  if (!decode_session_prefix(payload, prefix)) {
    return Error::corrupt("truncated session record prefix");
  }
  auto entry = logstore::decode_session(std::vector<unsigned char>(
      payload.begin() + static_cast<long>(prefix.end), payload.end()));
  if (!entry) return entry.error();
  ArchiveSessionRecord rec;
  rec.user = prefix.user;
  rec.day = prefix.day;
  rec.session_in_day = prefix.session_in_day;
  rec.measured = prefix.measured != 0;
  rec.params_after = prefix.params;
  rec.entry = std::move(*entry);
  return rec;
}

Expected<ArchiveUserRecord> decode_user_record(const std::vector<unsigned char>& payload) {
  ArchiveUserRecord rec;
  std::size_t pos = 4;  // past the type tag
  const bool ok = logstore::get_u64(payload, pos, rec.user) &&
                  logstore::get_f64(payload, pos, rec.tolerable_stall) &&
                  logstore::get_u64(payload, pos, rec.adjusted_days) &&
                  logstore::get_u64(payload, pos, rec.stats.triggers) &&
                  logstore::get_u64(payload, pos, rec.stats.optimizations_run) &&
                  logstore::get_u64(payload, pos, rec.stats.pruned_preplay) &&
                  logstore::get_u64(payload, pos, rec.stats.mc_evaluations) &&
                  logstore::get_u64(payload, pos, rec.stats.mc_rollouts_pruned);
  if (!ok || pos != payload.size()) return Error::corrupt("malformed user record");
  return rec;
}

std::uint32_t record_type(const std::vector<unsigned char>& payload) {
  std::size_t pos = 0;
  std::uint32_t type = 0;
  if (!logstore::get_u32(payload, pos, type)) return 0;
  return type;
}

}  // namespace

std::vector<unsigned char> ArchiveManifest::encode() const {
  std::vector<unsigned char> p;
  logstore::put_u32(p, kArchiveFormatVersion);
  logstore::put_u64(p, seed);
  logstore::put_u32(p, config_digest);
  logstore::put_u64(p, users);
  logstore::put_u64(p, days);
  logstore::put_u64(p, sessions_per_user_day);
  logstore::put_u64(p, warmup_sessions);
  logstore::put_u64(p, intervention_day);
  logstore::put_u32(p, enable_lingxi ? 1u : 0u);
  logstore::put_u64(p, users_per_shard);
  logstore::put_u64(p, shards.size());
  for (const auto& shard : shards) {
    logstore::put_u64(p, shard.first_user);
    logstore::put_u64(p, shard.user_count);
    logstore::put_u64(p, shard.record_count);
    logstore::put_u64(p, shard.byte_count);
  }
  return p;
}

Expected<ArchiveManifest> ArchiveManifest::decode(const std::vector<unsigned char>& payload) {
  ArchiveManifest m;
  std::size_t pos = 0;
  std::uint32_t format = 0, lingxi_flag = 0;
  std::uint64_t shard_count = 0;
  const bool ok = logstore::get_u32(payload, pos, format) &&
                  logstore::get_u64(payload, pos, m.seed) &&
                  logstore::get_u32(payload, pos, m.config_digest) &&
                  logstore::get_u64(payload, pos, m.users) &&
                  logstore::get_u64(payload, pos, m.days) &&
                  logstore::get_u64(payload, pos, m.sessions_per_user_day) &&
                  logstore::get_u64(payload, pos, m.warmup_sessions) &&
                  logstore::get_u64(payload, pos, m.intervention_day) &&
                  logstore::get_u32(payload, pos, lingxi_flag) &&
                  logstore::get_u64(payload, pos, m.users_per_shard) &&
                  logstore::get_u64(payload, pos, shard_count);
  if (!ok) return Error::corrupt("truncated archive manifest");
  if (format != kArchiveFormatVersion) {
    return Error::corrupt("unsupported archive format version");
  }
  if (shard_count > (1u << 20)) return Error::corrupt("shard count out of range");
  m.enable_lingxi = lingxi_flag != 0;
  m.shards.resize(shard_count);
  for (auto& shard : m.shards) {
    if (!logstore::get_u64(payload, pos, shard.first_user) ||
        !logstore::get_u64(payload, pos, shard.user_count) ||
        !logstore::get_u64(payload, pos, shard.record_count) ||
        !logstore::get_u64(payload, pos, shard.byte_count)) {
      return Error::corrupt("truncated shard index");
    }
  }
  if (pos != payload.size()) return Error::corrupt("trailing bytes in archive manifest");
  return m;
}

std::uint32_t config_digest(const sim::FleetConfig& config) {
  // The result-shaping scalar knobs of every sub-config, in declaration
  // order; scheduling knobs (threads, users_per_shard) deliberately excluded
  // so equal results hash equal. Custom user/abr/predictor factories are
  // code, not config, and cannot be hashed — archives produced with
  // different factories but equal configs share a digest.
  std::vector<unsigned char> p;
  logstore::put_u64(p, config.users);
  logstore::put_u64(p, config.days);
  logstore::put_u64(p, config.sessions_per_user_day);
  logstore::put_u64(p, config.warmup_sessions);
  logstore::put_u64(p, config.intervention_day);
  logstore::put_u32(p, config.enable_lingxi ? 1u : 0u);
  logstore::put_u32(p, config.drift_user_tolerance ? 1u : 0u);
  logstore::put_f64(p, config.session_jitter_sigma);
  for (const abr::QoeParams* params : {&config.fixed_params, &config.lingxi.default_params}) {
    logstore::put_f64(p, params->stall_penalty);
    logstore::put_f64(p, params->switch_penalty);
    logstore::put_f64(p, params->hyb_beta);
  }
  // Population mixture (user::UserPopulation::Config).
  for (double f : {config.population.sensitive_fraction, config.population.threshold_fraction,
                   config.population.insensitive_fraction,
                   config.population.low_tolerance_fraction,
                   config.population.mid_tolerance_fraction,
                   config.population.high_tolerance_fraction,
                   config.population.very_high_tolerance_fraction,
                   config.population.stable_fraction, config.population.moderate_fraction}) {
    logstore::put_f64(p, f);
  }
  // Network world (trace::PopulationModel::Config).
  for (double f : {config.network.median_bandwidth, config.network.sigma,
                   config.network.min_bandwidth, config.network.max_bandwidth,
                   config.network.relative_sd, config.network.rho}) {
    logstore::put_f64(p, f);
  }
  // Video world (trace::VideoGenerator::Config), ladder included.
  for (Kbps bitrate : config.video.ladder.bitrates()) logstore::put_f64(p, bitrate);
  for (double f : {config.video.mean_duration, config.video.min_duration,
                   config.video.max_duration, config.video.segment_duration,
                   config.video.duration_sigma, config.video.vbr_sigma}) {
    logstore::put_f64(p, f);
  }
  // LingXi controller knobs that move the assigned parameters.
  logstore::put_u32(p, config.lingxi.space.optimize_stall ? 1u : 0u);
  logstore::put_u32(p, config.lingxi.space.optimize_switch ? 1u : 0u);
  logstore::put_u32(p, config.lingxi.space.optimize_beta ? 1u : 0u);
  for (double f : {config.lingxi.space.stall_min, config.lingxi.space.stall_max,
                   config.lingxi.space.switch_min, config.lingxi.space.switch_max,
                   config.lingxi.space.beta_min, config.lingxi.space.beta_max}) {
    logstore::put_f64(p, f);
  }
  logstore::put_u64(p, config.lingxi.trigger_stall_threshold);
  logstore::put_u64(p, config.lingxi.obo_rounds);
  logstore::put_u64(p, config.lingxi.monte_carlo.samples);
  logstore::put_f64(p, config.lingxi.monte_carlo.sample_duration);
  logstore::put_u32(p, config.lingxi.enable_preplay_pruning ? 1u : 0u);
  logstore::put_f64(p, config.lingxi.rollout_rho);
  logstore::put_f64(p, config.lingxi.rollout_pessimism);
  logstore::put_f64(p, config.lingxi.adoption_margin);
  // Session simulator / player.
  const sim::SessionSimulator::Config& session = config.session;
  logstore::put_u64(p, session.throughput_window);
  logstore::put_f64(p, session.stall_event_threshold);
  logstore::put_u32(p, session.adaptive_buffer_max ? 1u : 0u);
  for (double f : {session.player.rtt, session.player.base_buffer_max,
                   session.player.min_buffer_max, session.player.max_buffer_max,
                   session.player.reference_bandwidth, session.player.startup_buffer}) {
    logstore::put_f64(p, f);
  }
  // Scenario script — every event, in script order, so archives and
  // snapshots pin the exact world the run simulated and a resumed leg can
  // only splice onto the same script. GATED on a non-empty script: empty
  // scripts hash byte-identically to pre-scenario digests, keeping every
  // existing archive and snapshot readable.
  if (!config.scenario.empty()) {
    const auto put_cohort = [&p](const scenario::Cohort& cohort) {
      logstore::put_u64(p, cohort.first_user);
      logstore::put_u64(p, cohort.last_user);
      logstore::put_u64(p, cohort.stride);
      logstore::put_u64(p, cohort.phase);
    };
    logstore::put_u64(p, config.scenario.shocks.size());
    for (const auto& shock : config.scenario.shocks) {
      put_cohort(shock.cohort);
      logstore::put_u64(p, shock.first_day);
      logstore::put_u64(p, shock.last_day);
      logstore::put_f64(p, shock.bandwidth_scale);
      logstore::put_f64(p, shock.sd_scale);
    }
    logstore::put_u64(p, config.scenario.curves.size());
    for (const auto& curve : config.scenario.curves) {
      put_cohort(curve.cohort);
      logstore::put_u64(p, curve.multipliers.size());
      for (double m : curve.multipliers) logstore::put_f64(p, m);
    }
    logstore::put_u64(p, config.scenario.flash_crowds.size());
    for (const auto& crowd : config.scenario.flash_crowds) {
      put_cohort(crowd.cohort);
      logstore::put_u64(p, crowd.arrival_day);
    }
    logstore::put_u64(p, config.scenario.churns.size());
    for (const auto& churn : config.scenario.churns) {
      put_cohort(churn.cohort);
      logstore::put_u64(p, churn.day);
    }
    logstore::put_u64(p, config.scenario.cohorts.size());
    for (const auto& cohort : config.scenario.cohorts) {
      put_cohort(cohort.cohort);
      for (double f :
           {cohort.population.sensitive_fraction, cohort.population.threshold_fraction,
            cohort.population.insensitive_fraction, cohort.population.low_tolerance_fraction,
            cohort.population.mid_tolerance_fraction, cohort.population.high_tolerance_fraction,
            cohort.population.very_high_tolerance_fraction, cohort.population.stable_fraction,
            cohort.population.moderate_fraction}) {
        logstore::put_f64(p, f);
      }
    }
  }
  return crc32(p.data(), p.size());
}

std::string manifest_filename() { return "manifest.lxa"; }

std::string shard_filename(std::size_t shard_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04zu.lxs", shard_index);
  return buf;
}

std::vector<unsigned char> encode_session_record(const ArchiveSessionRecord& rec) {
  std::vector<unsigned char> p;
  logstore::put_u32(p, kSessionRecord);
  logstore::put_u64(p, rec.user);
  logstore::put_u32(p, rec.day);
  logstore::put_u32(p, rec.session_in_day);
  logstore::put_u32(p, rec.measured ? 1u : 0u);
  logstore::put_f64(p, rec.params_after.stall_penalty);
  logstore::put_f64(p, rec.params_after.switch_penalty);
  logstore::put_f64(p, rec.params_after.hyb_beta);
  const auto entry = logstore::encode_session(rec.entry);
  p.insert(p.end(), entry.begin(), entry.end());
  return p;
}

std::vector<unsigned char> encode_user_record(const ArchiveUserRecord& rec) {
  std::vector<unsigned char> p;
  logstore::put_u32(p, kUserRecord);
  logstore::put_u64(p, rec.user);
  logstore::put_f64(p, rec.tolerable_stall);
  logstore::put_u64(p, rec.adjusted_days);
  logstore::put_u64(p, rec.stats.triggers);
  logstore::put_u64(p, rec.stats.optimizations_run);
  logstore::put_u64(p, rec.stats.pruned_preplay);
  logstore::put_u64(p, rec.stats.mc_evaluations);
  logstore::put_u64(p, rec.stats.mc_rollouts_pruned);
  return p;
}

Status FleetArchive::write(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Error::io("cannot create archive directory: " + dir);
  std::vector<unsigned char> manifest_bytes;
  logstore::write_record(manifest_bytes, manifest.encode());
  if (auto s = logstore::write_file(dir + "/" + manifest_filename(), manifest_bytes); !s) {
    return s;
  }
  for (std::size_t i = 0; i < shards.size(); ++i) {
    OBS_TIMED("telemetry.archive.shard_write_us");
    if (auto s = logstore::write_file(dir + "/" + shard_filename(i), shards[i]); !s) {
      return s;
    }
    if (obs::Registry* reg = obs::Registry::active()) {
      reg->add("telemetry.archive.shards_written");
      reg->add("telemetry.archive.bytes_written", shards[i].size());
    }
  }
  return {};
}

std::uint32_t FleetArchive::checksum() const {
  const auto manifest_payload = manifest.encode();
  std::uint32_t crc = crc32(manifest_payload.data(), manifest_payload.size());
  for (const auto& shard : shards) {
    // Chain per-shard CRCs through a fixed 8-byte block instead of copying
    // shard bytes: crc32(crc_so_far || crc32(shard)).
    std::vector<unsigned char> link;
    logstore::put_u32(link, crc);
    logstore::put_u32(link, crc32(shard.data(), shard.size()));
    crc = crc32(link.data(), link.size());
  }
  return crc;
}

std::uint64_t FleetArchive::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  return total;
}

namespace {

/// A structurally valid manifest whose shard table does not actually cover
/// the users it claims would make every scan silently yield nothing (each
/// scan iterates the shard table, so missing coverage is skipped, not
/// reported). Reject it at open() instead: the shard ranges must tile
/// [0, users) contiguously in order.
Status validate_manifest(const ArchiveManifest& manifest) {
  std::uint64_t next_user = 0;
  for (const auto& shard : manifest.shards) {
    if (shard.first_user != next_user) {
      return Error::corrupt("archive shard table does not tile the user range");
    }
    if (shard.user_count == 0) {
      return Error::corrupt("archive shard table has an empty shard");
    }
    next_user += shard.user_count;
  }
  if (next_user != manifest.users) {
    return Error::corrupt("archive shard table disagrees with manifest user count");
  }
  return {};
}

}  // namespace

Expected<ArchiveReader> ArchiveReader::open(const std::string& dir) {
  auto bytes = logstore::read_file(dir + "/" + manifest_filename());
  if (!bytes) return bytes.error();
  std::size_t pos = 0;
  auto payload = logstore::read_record(*bytes, pos);
  if (!payload) return payload.error();
  if (pos != bytes->size()) return Error::corrupt("trailing bytes after archive manifest");
  auto manifest = ArchiveManifest::decode(*payload);
  if (!manifest) return manifest.error();
  if (auto s = validate_manifest(*manifest); !s) return s.error();
  return ArchiveReader(dir, std::move(*manifest));
}

Status ArchiveReader::scan(const SessionCallback& on_session,
                           const UserCallback& on_user) const {
  return scan_users(0, manifest_.users == 0 ? 0 : manifest_.users - 1, on_session, on_user);
}

Status ArchiveReader::scan_users(std::uint64_t first_user, std::uint64_t last_user,
                                 const SessionCallback& on_session,
                                 const UserCallback& on_user) const {
  for (std::size_t i = 0; i < manifest_.shards.size(); ++i) {
    const auto& shard = manifest_.shards[i];
    if (shard.user_count == 0) continue;
    const std::uint64_t shard_last = shard.first_user + shard.user_count - 1;
    if (shard_last < first_user || shard.first_user > last_user) continue;
    if (auto s = scan_shard(i, first_user, last_user, 0, ~0u, on_session, on_user); !s) {
      return s;
    }
  }
  return {};
}

Status ArchiveReader::scan_days(std::uint32_t first_day, std::uint32_t last_day,
                                const SessionCallback& on_session) const {
  for (std::size_t i = 0; i < manifest_.shards.size(); ++i) {
    if (auto s = scan_shard(i, 0, ~0ULL, first_day, last_day, on_session, nullptr); !s) {
      return s;
    }
  }
  return {};
}

Status ArchiveReader::scan_shard(std::size_t shard_index, std::uint64_t first_user,
                                 std::uint64_t last_user, std::uint32_t first_day,
                                 std::uint32_t last_day, const SessionCallback& on_session,
                                 const UserCallback& on_user) const {
  const std::string path = dir_ + "/" + shard_filename(shard_index);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error::io("cannot open archive shard: " + path);
  std::uint64_t records = 0;
  while (in.peek() != std::char_traits<char>::eof()) {
    auto payload = logstore::read_record(in);
    if (!payload) return payload.error();
    ++records;
    switch (record_type(*payload)) {
      case kSessionRecord: {
        SessionPrefix prefix;
        if (!decode_session_prefix(*payload, prefix)) {
          return Error::corrupt("truncated session record prefix");
        }
        if (prefix.user < first_user || prefix.user > last_user) break;
        if (prefix.day < first_day || prefix.day > last_day) break;
        if (!on_session) break;
        auto rec = decode_session_record(*payload);
        if (!rec) return rec.error();
        on_session(*rec);
        break;
      }
      case kUserRecord: {
        auto rec = decode_user_record(*payload);
        if (!rec) return rec.error();
        if (rec->user < first_user || rec->user > last_user) break;
        if (on_user) on_user(*rec);
        break;
      }
      default:
        return Error::corrupt("unknown telemetry record type");
    }
  }
  // peek() returning EOF means either a clean end-of-stream or an I/O error
  // mid-scan (a failing read also trips eofbit on some libs, so check badbit
  // and an eof-less failbit explicitly): only the former may fall through to
  // the record-count check, otherwise a truncated-by-IO shard could
  // masquerade as a clean-but-short one.
  if (in.bad() || (in.fail() && !in.eof())) {
    return Error::io("archive shard stream failed mid-scan: " + path);
  }
  if (records != manifest_.shards[shard_index].record_count) {
    return Error::corrupt("shard record count disagrees with manifest: " + path);
  }
  return {};
}

}  // namespace lingxi::telemetry
