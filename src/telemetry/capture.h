// Sharded session capture: the TelemetrySink that builds fleet archives.
//
// ShardedCapture buffers encoded records per user — the finest shard, which
// makes concurrent capture lock-free: FleetRunner drives each user from
// exactly one worker, so each buffer has a single writer and the buffer
// table itself is pre-sized in begin_fleet() before any worker starts.
// finish() then merges the buffers in deterministic ascending user order and
// regroups them into archive shard files of `users_per_shard` users each.
//
// The single-writer-per-user property survives the cross-user wave
// scheduler: a cohort interleaves the *users* of a shard on one worker, but
// each user's sessions are still recorded in chronological (day, session)
// order (a debug assertion pins this), so per-user buffers — and therefore
// the merged archive bytes — cannot observe the interleaving.
//
// Consequently the archive bytes depend only on (fleet config, seed, archive
// users_per_shard) — never on the thread count, the runner's scheduling
// shard size, or the scheduler mode. That is what lets one capture serve any
// number of replays as the ground truth for paired comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/archive.h"
#include "telemetry/sink.h"

namespace lingxi::telemetry {

class ShardedCapture final : public TelemetrySink {
 public:
  struct Config {
    /// Users per archive shard file (archive granularity; independent of the
    /// runner's scheduling shard size).
    std::size_t users_per_shard = 64;
  };

  ShardedCapture();
  explicit ShardedCapture(Config config);

  // TelemetrySink -----------------------------------------------------------
  void begin_fleet(const sim::FleetConfig& config, std::uint64_t seed) override;
  void record_session(const SessionContext& ctx,
                      const sim::SessionResult& session) override;
  void record_user(const UserTelemetry& user) override;

  /// Merge the per-user buffers into the final archive. Call after
  /// FleetRunner::run() returns; the capture can then be reused via a new
  /// begin_fleet().
  FleetArchive finish() const;

  /// Session records buffered so far, assuming one trailing user record per
  /// user slot. Scenario churn emits an extra user record per departed
  /// generation, so under a churn script this undercounts by the number of
  /// departures — use the replayed accumulator for exact scenario tallies.
  std::size_t session_count() const noexcept;

  /// One user's capture position: the framed records buffered so far plus
  /// the chronological cursor. The snapshot subsystem persists these at a
  /// day boundary so a resumed fleet appends days [D, ...) to the restored
  /// buffers and finish() emits archive bytes identical to an unsplit run.
  struct CaptureCursor {
    std::vector<unsigned char> bytes;  ///< framed records, chronological
    std::uint64_t records = 0;
    /// (day << 32) | session of the last record + 1, for the debug-only
    /// chronological-order assertion under interleaved execution.
    std::uint64_t next_expected_at_least = 0;

    bool operator==(const CaptureCursor&) const = default;
  };

  /// Export every user's capture position (index == user index). Call at a
  /// day boundary, i.e. between FleetRunner::run_days legs. Deliberately a
  /// copy: snapshotting must not disturb a live capture, which may keep
  /// recording further days in-process after the snapshot is taken.
  std::vector<CaptureCursor> cursors() const { return users_; }
  /// Restore positions exported by cursors(). Must follow a begin_fleet()
  /// with the same fleet config and seed (which pre-sizes the user table);
  /// `cursors` must hold exactly one entry per user.
  void restore_cursors(std::vector<CaptureCursor> cursors);

 private:
  Config config_;
  ArchiveManifest manifest_;  ///< shard index filled in by finish()
  std::vector<CaptureCursor> users_;
};

}  // namespace lingxi::telemetry
