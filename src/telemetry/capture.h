// Sharded session capture: the TelemetrySink that builds fleet archives.
//
// ShardedCapture buffers encoded records per user — the finest shard, which
// makes concurrent capture lock-free: FleetRunner drives each user from
// exactly one worker, so each buffer has a single writer and the buffer
// table itself is pre-sized in begin_fleet() before any worker starts.
// finish() then merges the buffers in deterministic ascending user order and
// regroups them into archive shard files of `users_per_shard` users each.
//
// The single-writer-per-user property survives the cross-user wave
// scheduler: a cohort interleaves the *users* of a shard on one worker, but
// each user's sessions are still recorded in chronological (day, session)
// order (a debug assertion pins this), so per-user buffers — and therefore
// the merged archive bytes — cannot observe the interleaving.
//
// Consequently the archive bytes depend only on (fleet config, seed, archive
// users_per_shard) — never on the thread count, the runner's scheduling
// shard size, or the scheduler mode. That is what lets one capture serve any
// number of replays as the ground truth for paired comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/archive.h"
#include "telemetry/sink.h"

namespace lingxi::telemetry {

class ShardedCapture final : public TelemetrySink {
 public:
  struct Config {
    /// Users per archive shard file (archive granularity; independent of the
    /// runner's scheduling shard size).
    std::size_t users_per_shard = 64;
  };

  ShardedCapture();
  explicit ShardedCapture(Config config);

  // TelemetrySink -----------------------------------------------------------
  void begin_fleet(const sim::FleetConfig& config, std::uint64_t seed) override;
  void record_session(const SessionContext& ctx,
                      const sim::SessionResult& session) override;
  void record_user(const UserTelemetry& user) override;

  /// Merge the per-user buffers into the final archive. Call after
  /// FleetRunner::run() returns; the capture can then be reused via a new
  /// begin_fleet().
  FleetArchive finish() const;

  std::size_t session_count() const noexcept;

 private:
  struct UserBuffer {
    std::vector<unsigned char> bytes;  ///< framed records, chronological
    std::uint64_t records = 0;
    /// (day << 32) | session of the last record + 1, for the debug-only
    /// chronological-order assertion under interleaved execution.
    std::uint64_t next_expected_at_least = 0;
  };

  Config config_;
  ArchiveManifest manifest_;  ///< shard index filled in by finish()
  std::vector<UserBuffer> users_;
};

}  // namespace lingxi::telemetry
