#include "telemetry/replay.h"

#include <limits>

namespace lingxi::telemetry {
namespace {

/// Accumulates one (user, day) worth of sessions into a UserDayRecord.
struct UserDayBuilder {
  analytics::UserDayRecord rec;
  double param_beta_sum = 0.0;
  double param_stall_sum = 0.0;
  double bw_sum = 0.0;
  std::size_t bw_count = 0;
  // Sessions actually archived for this (user, day) — NOT the manifest's
  // sessions_per_user_day, which scenario scripts (diurnal curves, flash
  // crowds) modulate per day. Identical for unscripted archives, where
  // every user-day holds exactly the configured count.
  std::size_t session_count = 0;
  bool open = false;

  void begin(std::size_t user, std::size_t day) {
    *this = UserDayBuilder{};
    rec.user = user;
    rec.day = day;
    open = true;
  }

  void flush(std::vector<analytics::UserDayRecord>& out) {
    if (!open) return;
    const double n = static_cast<double>(session_count);
    rec.mean_beta = n > 0.0 ? param_beta_sum / n : 0.0;
    rec.mean_stall_penalty = n > 0.0 ? param_stall_sum / n : 0.0;
    rec.mean_bandwidth =
        bw_count > 0 ? bw_sum / static_cast<double>(bw_count) : 0.0;
    out.push_back(rec);
    open = false;
  }
};

}  // namespace

Expected<ReplayResult> Replay::run(const ArchiveReader& reader, Options options) {
  const ArchiveManifest& manifest = reader.manifest();
  ReplayResult result;
  result.daily.resize(manifest.days);
  result.exit_by_stall.resize(options.stall_bin_edges.size() + 1);
  for (std::size_t b = 0; b < result.exit_by_stall.size(); ++b) {
    result.exit_by_stall[b].stall_lo = b == 0 ? 0.0 : options.stall_bin_edges[b - 1];
    result.exit_by_stall[b].stall_hi = b < options.stall_bin_edges.size()
                                           ? options.stall_bin_edges[b]
                                           : std::numeric_limits<double>::infinity();
  }

  UserDayBuilder day_builder;
  // Stall events for the in-flight user; their ground-truth tolerance only
  // arrives with the trailing user record.
  std::size_t user_events_start = 0;
  std::uint64_t current_user = 0;
  std::size_t user_event_counter = 0;

  bool day_out_of_range = false;
  const auto on_session = [&](const ArchiveSessionRecord& rec) {
    const sim::SessionResult& session = rec.entry.session;
    result.fleet.add_session(session, rec.measured);
    if (rec.day < result.daily.size()) {
      result.daily[rec.day].add(session);
    } else {
      // Shard contents disagree with the manifest's day count: corrupt
      // archive, reported after the scan (callbacks cannot fail mid-stream).
      day_out_of_range = true;
    }

    if (options.collect_watch_times) result.watch_times.push_back(session.watch_time);
    for (auto& bin : result.exit_by_stall) {
      if (session.total_stall >= bin.stall_lo && session.total_stall < bin.stall_hi) {
        ++bin.sessions;
        if (session.exited) ++bin.exits;
        break;
      }
    }

    if (options.collect_user_days) {
      if (!day_builder.open || day_builder.rec.user != rec.user ||
          day_builder.rec.day != rec.day) {
        day_builder.flush(result.user_days);
        day_builder.begin(rec.user, rec.day);
      }
      ++day_builder.session_count;
      day_builder.rec.watch_time += session.watch_time;
      day_builder.rec.stall_time += session.total_stall;
      day_builder.rec.stall_events += static_cast<double>(session.stall_events);
      if (sim::exited_during_stall(session, options.stall_threshold)) {
        day_builder.rec.stall_exits += 1.0;
      }
      for (const auto& seg : session.segments) {
        day_builder.bw_sum += seg.throughput;
        ++day_builder.bw_count;
      }
      day_builder.param_beta_sum += rec.params_after.hyb_beta;
      day_builder.param_stall_sum += rec.params_after.stall_penalty;
    }

    if (options.collect_stall_events) {
      if (rec.user != current_user) {
        current_user = rec.user;
        user_events_start = result.stall_events.size();
        user_event_counter = 0;
      }
      const bool lingxi_active =
          manifest.enable_lingxi && rec.day >= manifest.intervention_day;
      if (lingxi_active) {
        for (const auto& seg : session.segments) {
          if (seg.stall_time > options.stall_threshold) {
            analytics::StallEventRecord ev;
            ev.user = rec.user;
            ev.event_index = user_event_counter++;
            ev.stall_time = seg.stall_time;
            ev.param_beta_after = rec.params_after.hyb_beta;
            ev.param_stall_after = rec.params_after.stall_penalty;
            ev.exited = session.exited && seg.index + 2 >= session.segments.size();
            result.stall_events.push_back(ev);
          }
        }
      }
    }
  };

  const auto on_user = [&](const ArchiveUserRecord& rec) {
    day_builder.flush(result.user_days);
    ++result.fleet.users;
    result.fleet.add_lingxi_stats(rec.stats);
    result.fleet.adjusted_user_days += rec.adjusted_days;
    if (options.collect_stall_events && rec.user == current_user) {
      for (std::size_t i = user_events_start; i < result.stall_events.size(); ++i) {
        result.stall_events[i].user_tolerance = rec.tolerable_stall;
      }
      user_events_start = result.stall_events.size();
    }
  };

  if (auto s = reader.scan(on_session, on_user); !s) return s.error();
  if (day_out_of_range) {
    return Error::corrupt("session day exceeds the manifest's day count");
  }
  day_builder.flush(result.user_days);
  return result;
}

Expected<ReplayResult> Replay::run(const std::string& dir, Options options) {
  auto reader = ArchiveReader::open(dir);
  if (!reader) return reader.error();
  return run(*reader, std::move(options));
}

}  // namespace lingxi::telemetry
