// Fleet telemetry capture hooks.
//
// A TelemetrySink observes a sim::FleetRunner run session by session — the
// capture plane of the telemetry subsystem (see archive.h for the on-disk
// format and replay.h for the query side). FleetRunner invokes the sink from
// its worker threads, so implementations must tolerate concurrent calls for
// *different* users; calls for one user always come from a single worker in
// chronological (day, session) order — under the cross-user wave scheduler
// different users of a shard interleave between calls, but a single user's
// order is preserved — and record_user() follows that user's last session.
//
// The sink sees everything the offline analyses need: the full per-segment
// trajectory of every session (SessionResult), the QoE parameters the ABR
// ended the session with (LingXi's per-user assignments, Figs. 13-15), and a
// per-user summary of LingXi's optimizer counters plus the model's
// ground-truth stall tolerance.
#pragma once

#include <cstdint>

#include "abr/qoe.h"
#include "core/lingxi.h"
#include "sim/fleet_runner.h"
#include "sim/session.h"

namespace lingxi::telemetry {

/// Per-session context accompanying a SessionResult.
struct SessionContext {
  std::size_t user_index = 0;
  std::size_t day = 0;
  std::size_t session_in_day = 0;
  /// Past the fleet's warmup window (counts toward measured_* metrics).
  bool measured = false;
  /// Full length of the video served this session, seconds.
  double video_duration = 0.0;
  /// ABR parameters at session end, i.e. after any LingXi update this
  /// session triggered — the per-session assignment of Figs. 13-15.
  abr::QoeParams params_after;
  /// Ground-truth tolerable stall of the user model that played this session
  /// (the day-drifted value, unlike UserTelemetry's base-user figure).
  double user_tolerance = 0.0;
};

/// Per-user summary emitted once, after the user's last session.
struct UserTelemetry {
  std::size_t user_index = 0;
  /// Ground-truth stall tolerance of the user model (Fig. 15 labels).
  double tolerable_stall = 0.0;
  /// User-days that ended off the default parameters.
  std::uint64_t adjusted_days = 0;
  /// LingXi optimizer counters (zero for control fleets).
  core::LingXiStats stats;
};

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  /// Called once, before any worker starts.
  virtual void begin_fleet(const sim::FleetConfig& config, std::uint64_t seed) = 0;
  /// Called per completed session from worker threads (serial per user).
  virtual void record_session(const SessionContext& ctx,
                              const sim::SessionResult& session) = 0;
  /// Called once per user, after that user's last record_session call.
  virtual void record_user(const UserTelemetry& user) = 0;
};

}  // namespace lingxi::telemetry
