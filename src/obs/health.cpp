#include "obs/health.h"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <utility>

namespace lingxi::obs {
namespace {

std::atomic<HealthMonitor*> g_active{nullptr};

const char* kind_word(SloKind kind) {
  switch (kind) {
    case SloKind::kGaugeFloor: return "floor";
    case SloKind::kGaugeCeiling: return "ceiling";
    case SloKind::kRateCeiling: return "rate";
    case SloKind::kStall: return "stall";
  }
  return "?";
}

Expected<double> parse_threshold(std::string_view text, std::string_view spec) {
  double v = 0.0;
  auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    return Error::parse("slo: bad threshold '" + std::string(text) + "' in '" +
                        std::string(spec) + "'");
  }
  return v;
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

Expected<SloRule> parse_slo_rule(std::string_view spec) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t colon = spec.find(':', start);
    if (colon == std::string_view::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() < 2 || parts[0].empty() || parts[1].empty()) {
    return Error::parse("slo: expected kind:metric:threshold[:name], got '" +
                        std::string(spec) + "'");
  }

  SloRule rule;
  std::string_view kind = parts[0];
  rule.metric = std::string(parts[1]);
  std::size_t threshold_parts = 1;  // parts consumed after kind:metric
  if (kind == "floor") {
    rule.kind = SloKind::kGaugeFloor;
  } else if (kind == "ceiling") {
    rule.kind = SloKind::kGaugeCeiling;
  } else if (kind == "rate") {
    rule.kind = SloKind::kRateCeiling;
  } else if (kind == "stall") {
    rule.kind = SloKind::kStall;
    threshold_parts = 0;  // stall:metric[:name]
  } else {
    return Error::parse("slo: unknown kind '" + std::string(kind) + "' in '" +
                        std::string(spec) + "' (want floor|ceiling|rate|stall)");
  }

  std::size_t next = 2;
  if (threshold_parts == 1) {
    if (parts.size() < 3) {
      return Error::parse("slo: missing threshold in '" + std::string(spec) + "'");
    }
    auto v = parse_threshold(parts[2], spec);
    if (!v) return v.error();
    rule.threshold = *v;
    next = 3;
  }
  if (parts.size() > next + 1) {
    return Error::parse("slo: too many fields in '" + std::string(spec) + "'");
  }
  if (parts.size() == next + 1 && !parts[next].empty()) {
    rule.name = std::string(parts[next]);
  }
  if (rule.name.empty()) {
    rule.name = std::string(kind_word(rule.kind)) + ":" + rule.metric;
  }
  return rule;
}

HealthMonitor* HealthMonitor::active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

void HealthMonitor::install(HealthMonitor* m) noexcept {
  g_active.store(m, std::memory_order_release);
}

HealthMonitor::HealthMonitor(std::vector<SloRule> rules)
    : rules_(std::move(rules)), states_(rules_.size()) {}

void HealthMonitor::fire(std::uint64_t day, const SloRule& rule, double observed,
                         std::string message) {
  HealthAlert alert;
  alert.day = day;
  alert.rule = rule.name;
  alert.metric = rule.metric;
  alert.observed = observed;
  alert.threshold = rule.threshold;
  alert.message = std::move(message);
  if (TimelineWriter* w = TimelineWriter::active()) w->append_alert(alert);
  alerts_.push_back(std::move(alert));
}

void HealthMonitor::evaluate(std::uint64_t day, const RegistrySnapshot& snapshot) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& state = states_[i];
    const MetricSnapshot* m = snapshot.find(rule.metric);

    bool violated = false;
    double observed = 0.0;
    std::string message;

    switch (rule.kind) {
      case SloKind::kGaugeFloor:
      case SloKind::kGaugeCeiling: {
        // An absent or non-gauge metric is "no data", not a violation —
        // rules may be armed before the first sample publishes.
        if (m == nullptr || m->kind != MetricKind::kGauge) {
          state.violated = false;
          continue;
        }
        observed = m->value;
        if (rule.kind == SloKind::kGaugeFloor) {
          violated = observed < rule.threshold;
          if (violated) {
            message = rule.metric + " = " + format_value(observed) + " below floor " +
                      format_value(rule.threshold);
          }
        } else {
          violated = observed > rule.threshold;
          if (violated) {
            message = rule.metric + " = " + format_value(observed) + " above ceiling " +
                      format_value(rule.threshold);
          }
        }
        break;
      }
      case SloKind::kRateCeiling:
      case SloKind::kStall: {
        // Counters: evaluate the day-over-day delta. An absent counter
        // reads 0 so `rate:checkpoint.commit.failures:0` stays quiet until
        // the first failure is ever recorded.
        std::uint64_t now = 0;
        if (m != nullptr && m->kind == MetricKind::kCounter) now = m->count;
        if (!state.have_last) {
          state.have_last = true;
          state.last_count = now;
          state.violated = false;
          continue;
        }
        std::uint64_t delta = now >= state.last_count ? now - state.last_count : 0;
        state.last_count = now;
        observed = static_cast<double>(delta);
        if (rule.kind == SloKind::kRateCeiling) {
          violated = observed > rule.threshold;
          if (violated) {
            message = rule.metric + " grew by " + format_value(observed) +
                      " this day, above rate ceiling " + format_value(rule.threshold);
          }
        } else {
          violated = delta == 0;
          if (violated) message = rule.metric + " made no progress this day";
        }
        break;
      }
    }

    if (violated && !state.violated) fire(day, rule, observed, std::move(message));
    state.violated = violated;
  }
}

}  // namespace lingxi::obs
