// Fleet observability: RAII scoped timers.
//
// OBS_TIMED("layer.component.phase_us") measures the enclosing scope with a
// steady clock and records microseconds into the active Registry's latency
// histogram; OBS_TIMED_SPAN(...) additionally emits the same interval as a
// trace span. When neither sink is installed a site costs ~one atomic load
// plus a branch — the clock is only read when something is listening.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lingxi::obs {

/// Times its scope into `Registry::observe(name, latency_us(), elapsed_us)`
/// and, when `trace` is set, into the active tracer under the same name.
/// `name` must be a string literal.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, bool trace = false) noexcept
      : registry_(Registry::active()),
        tracer_(trace ? Tracer::active() : nullptr), name_(name),
        begin_us_(registry_ != nullptr || tracer_ != nullptr ? Tracer::now_us()
                                                             : 0) {}
  ~ScopedTimer() {
    if (registry_ == nullptr && tracer_ == nullptr) return;
    const std::uint64_t end_us = Tracer::now_us();
    if (registry_ != nullptr) {
      registry_->observe(name_, HistogramSpec::latency_us(),
                         static_cast<double>(end_us - begin_us_));
    }
    if (tracer_ != nullptr) tracer_->record(name_, begin_us_, end_us);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry* registry_;
  Tracer* tracer_;
  const char* name_;
  std::uint64_t begin_us_;
};

}  // namespace lingxi::obs

/// Time the enclosing scope into the latency histogram `name` (literal).
#define OBS_TIMED(name)                                      \
  ::lingxi::obs::ScopedTimer LINGXI_OBS_CONCAT(obs_timed_,   \
                                               __COUNTER__)( \
      name, /*trace=*/false)

/// Time the enclosing scope into histogram `name` AND emit it as a span.
#define OBS_TIMED_SPAN(name)                                 \
  ::lingxi::obs::ScopedTimer LINGXI_OBS_CONCAT(obs_timed_,   \
                                               __COUNTER__)( \
      name, /*trace=*/true)
