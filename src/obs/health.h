// Fleet observability: declarative SLO watchdog.
//
// A HealthMonitor holds a small set of declarative SLO rules and evaluates
// them against the merged Registry snapshot at each fleet-day boundary (the
// same checkpoint-hook seam the timeline rides). Four rule kinds cover the
// operational questions a long-lived fleet daemon needs answered:
//
//   kGaugeFloor    — gauge must stay >= threshold (sessions/sec floor)
//   kGaugeCeiling  — gauge must stay <= threshold (RSS ceiling)
//   kRateCeiling   — a counter may grow by at most `threshold` per day
//                    (checkpoint.commit.failures > 0, error budgets)
//   kStall         — a counter must grow every day (progress watchdog)
//
// Rules LATCH: an alert is emitted on the transition into violation and the
// rule stays silent while the violation persists, so a permanently degraded
// metric raises exactly one alert, not one per remaining day (the rule
// re-arms when the metric recovers). Alerts are appended to the active
// TimelineWriter as `health.alert` records and retained in memory; drivers
// turn healthy() == false into a non-zero exit.
//
// Rules over deterministic metrics (the `sim.fleet.*` gauges) inherit the
// determinism contract: the same rule fires on the same fleet day in every
// cell of the scheduler x threads x shard x batch grid and across a
// kill/resume splice (pinned in tests/test_properties.cpp).
//
// Like Registry and TimelineWriter, the monitor is a runtime-nullable
// process-global install consulted by PeriodicSampler once per day boundary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace lingxi::obs {

enum class SloKind {
  kGaugeFloor,    ///< gauge < threshold violates
  kGaugeCeiling,  ///< gauge > threshold violates
  kRateCeiling,   ///< counter delta per day > threshold violates
  kStall,         ///< counter delta per day == 0 violates (threshold unused)
};

/// One declarative SLO rule.
struct SloRule {
  SloKind kind = SloKind::kGaugeFloor;
  std::string metric;     ///< registry metric name to watch
  double threshold = 0.0;
  std::string name;       ///< display name; defaults from kind:metric when empty
};

/// Parse a rule from the CLI grammar `kind:metric:threshold[:name]` with
/// kind one of floor | ceiling | rate | stall (stall takes no threshold:
/// `stall:metric[:name]`). Malformed specs are Error::kParse.
Expected<SloRule> parse_slo_rule(std::string_view spec);

class HealthMonitor {
 public:
  explicit HealthMonitor(std::vector<SloRule> rules);

  /// The process-wide active monitor, or nullptr when no SLOs are armed.
  static HealthMonitor* active() noexcept;
  static void install(HealthMonitor* m) noexcept;

  /// Evaluate every rule against `snapshot` for fleet day `day`, emitting
  /// alerts for rules newly entering violation (into the active
  /// TimelineWriter, if any, and the in-memory list). Gauge rules skip
  /// absent metrics; rate/stall rules treat an absent counter as 0 and
  /// need two evaluations before they can fire (the first establishes the
  /// baseline for the day-over-day delta).
  void evaluate(std::uint64_t day, const RegistrySnapshot& snapshot);

  /// False once any rule has fired at least once.
  bool healthy() const noexcept { return alerts_.empty(); }
  const std::vector<HealthAlert>& alerts() const noexcept { return alerts_; }
  const std::vector<SloRule>& rules() const noexcept { return rules_; }

 private:
  struct RuleState {
    bool violated = false;       ///< latch: inside a violation episode
    bool have_last = false;      ///< counter baseline established
    std::uint64_t last_count = 0;
  };

  void fire(std::uint64_t day, const SloRule& rule, double observed, std::string message);

  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;  ///< parallel to rules_
  std::vector<HealthAlert> alerts_;
};

}  // namespace lingxi::obs
