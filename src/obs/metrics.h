// Fleet observability: thread-sharded metrics registry.
//
// A Registry holds named counters, gauges and fixed-bucket histograms. Each
// recording thread accumulates into its own shard (created on first touch,
// single writer, a per-shard mutex taken only for the brief cell update so a
// snapshot can read concurrently without torn values); snapshot() merges the
// shards into one deterministic view — metrics sorted by name, counters and
// histogram buckets summed, gauges resolved by an order-independent rule —
// so the merged snapshot of a deterministic workload is identical at any
// thread count (tests/test_obs.cpp pins this).
//
// The registry is a runtime-nullable process-wide sink: instrumented code
// calls Registry::active() (one atomic load + branch) and does nothing when
// no registry is installed — observability off costs ~one branch per site
// and never allocates. Observability output feeds NO simulation state and is
// kept out of every checksum: enabling it cannot change a result bit (the
// obs-on/off identity grid in tests/test_properties.cpp).
//
// Naming convention: `layer.component.metric`, e.g. `predictor.pool.queries`
// or `snapshot.save.total_us` (histogram of microseconds). The stable JSON
// schema is documented at write_json().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lingxi::obs {

/// Fixed ascending histogram bucket upper bounds. Bucket i counts values
/// v <= bounds[i]; one implicit overflow bucket (index bounds.size()) counts
/// everything greater than the last bound. Specs are shared by pointer —
/// pass a static instance (latency_us() / rows()) or keep the spec alive for
/// the registry's lifetime.
class HistogramSpec {
 public:
  explicit HistogramSpec(std::vector<double> bounds);

  /// Canonical log-spaced microsecond latency buckets (1us .. ~67s).
  static const HistogramSpec& latency_us();
  /// Canonical power-of-two row/occupancy buckets (1 .. 4096).
  static const HistogramSpec& rows();

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Bucket count including the overflow bucket.
  std::size_t buckets() const noexcept { return bounds_.size() + 1; }
  /// Index of the bucket counting `v` (first bound >= v; overflow past the
  /// last bound).
  std::size_t bucket_for(double v) const noexcept;

 private:
  std::vector<double> bounds_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One merged metric in a registry snapshot.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter value, or histogram observation count.
  std::uint64_t count = 0;
  /// Gauge value, or histogram sum of observations.
  double value = 0.0;
  double min = 0.0;  ///< histogram only
  double max = 0.0;  ///< histogram only
  std::vector<double> bounds;          ///< histogram bucket upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 counts

  /// Histogram quantile estimate (q in [0,1]) by linear interpolation inside
  /// the bucket holding rank q*count. Bucket 0's lower edge is the observed
  /// min and the overflow bucket's upper edge is the observed max, and the
  /// result is clamped to [min, max] — so single-bucket and overflow-heavy
  /// histograms still return values inside the observed range. Returns 0 for
  /// empty histograms and non-histogram metrics.
  double quantile(double q) const noexcept;

  bool operator==(const MetricSnapshot&) const = default;
};

/// Deterministic point-in-time view of a registry: metrics sorted by name.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// Metric by exact name; nullptr when absent.
  const MetricSnapshot* find(std::string_view name) const noexcept;
  /// Stable JSON schema `lingxi.obs.metrics/v1`:
  ///   {"schema": "lingxi.obs.metrics/v1",
  ///    "metrics": [
  ///      {"name": ..., "kind": "counter", "value": <u64>},
  ///      {"name": ..., "kind": "gauge", "value": <double>},
  ///      {"name": ..., "kind": "histogram", "count": <u64>, "sum": <double>,
  ///       "min": <double>, "max": <double>,
  ///       "p50": <double>, "p95": <double>, "p99": <double>,
  ///       "bounds": [<double>...], "buckets": [<u64>...]}]}
  /// Metrics appear in sorted-name order; doubles print with %.17g so the
  /// serialization round-trips bit-exactly. p50/p95/p99 are the
  /// MetricSnapshot::quantile bucket-interpolated estimates.
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition (version 0.0.4): counters and gauges as
  /// single samples, histograms as cumulative `_bucket{le=...}` series plus
  /// `_sum` / `_count`. Dotted names are sanitized to underscores.
  void write_prometheus(std::ostream& os) const;

  bool operator==(const RegistrySnapshot&) const = default;
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide active registry, or nullptr when observability is off.
  /// The one branch every instrumentation site pays.
  static Registry* active() noexcept;
  /// Install `r` as the active registry (nullptr disables). Install/uninstall
  /// while no instrumented code is running; a registry must be uninstalled
  /// before it is destroyed.
  static void install(Registry* r) noexcept;

  /// Add to a named counter (created on first touch in this thread's shard).
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Set a named gauge. Cross-shard merge: the shard with the most updates
  /// wins, ties resolved toward the larger value — order-independent, so a
  /// gauge set deterministically merges deterministically.
  void set(std::string_view name, double value);
  /// Record one histogram observation. All observers of one name must pass
  /// the same spec.
  void observe(std::string_view name, const HistogramSpec& spec, double value);

  /// Merged counter value (0 when absent) — cheap read-back for samplers,
  /// derived gauges and tests.
  std::uint64_t counter(std::string_view name) const;

  /// Deterministic merged view (sorted names). Safe to call while other
  /// threads record.
  RegistrySnapshot snapshot() const;
  /// snapshot() serialized via RegistrySnapshot::write_json.
  void write_json(std::ostream& os) const;
  /// write_json to a file; false on I/O failure.
  bool write_json_file(const std::string& path) const;
  /// snapshot() serialized via RegistrySnapshot::write_prometheus.
  void write_prometheus(std::ostream& os) const;

 private:
  struct Cell;
  struct Shard;

  Shard& local_shard();

  const std::uint64_t id_;  ///< process-unique, guards the thread-local cache
  mutable std::mutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lingxi::obs
