#include "obs/timeline.h"

#include <atomic>
#include <cstring>
#include <utility>

#include "common/crc32.h"

namespace lingxi::obs {
namespace {

// Frame layout (logstore discipline, timeline magic):
//   "LXTL" | u32 version | u32 payload_len | payload | u32 crc32(payload)
// All integers little-endian; doubles as the little-endian bit pattern.
constexpr char kMagic[4] = {'L', 'X', 'T', 'L'};
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 4;
// Generous ceiling; a day record for a large registry is a few KiB.
constexpr std::uint32_t kMaxPayload = 64u * 1024u * 1024u;

// Record types inside a frame payload.
constexpr std::uint32_t kRecSchema = 0;
constexpr std::uint32_t kRecDay = static_cast<std::uint32_t>(TimelineRecord::Type::kDay);
constexpr std::uint32_t kRecAlert = static_cast<std::uint32_t>(TimelineRecord::Type::kAlert);

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::vector<unsigned char>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::vector<unsigned char>& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Bounds-checked big-endian-free decoding cursor. Every get_ reports
// exhaustion through `ok` so a truncated payload decodes to an error, not a
// read past the end.
struct Cursor {
  const unsigned char* p;
  std::size_t left;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    std::uint32_t n = u32();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }
};

// One metric inside a day-record section: name | kind | count | value |
// min | max | bounds[] | buckets[].
void encode_metric(std::vector<unsigned char>& out, const MetricSnapshot& m) {
  put_string(out, m.name);
  put_u32(out, static_cast<std::uint32_t>(m.kind));
  put_u64(out, m.count);
  put_f64(out, m.value);
  put_f64(out, m.min);
  put_f64(out, m.max);
  put_u32(out, static_cast<std::uint32_t>(m.bounds.size()));
  for (double b : m.bounds) put_f64(out, b);
  put_u32(out, static_cast<std::uint32_t>(m.buckets.size()));
  for (std::uint64_t c : m.buckets) put_u64(out, c);
}

bool decode_metric(Cursor& c, MetricSnapshot& m) {
  m.name = c.str();
  std::uint32_t kind = c.u32();
  if (kind > static_cast<std::uint32_t>(MetricKind::kHistogram)) c.ok = false;
  m.kind = static_cast<MetricKind>(kind);
  m.count = c.u64();
  m.value = c.f64();
  m.min = c.f64();
  m.max = c.f64();
  std::uint32_t nb = c.u32();
  if (!c.take(static_cast<std::size_t>(nb) * 8)) return false;
  m.bounds.resize(nb);
  for (std::uint32_t i = 0; i < nb; ++i) m.bounds[i] = c.f64();
  std::uint32_t nk = c.u32();
  if (!c.take(static_cast<std::size_t>(nk) * 8)) return false;
  m.buckets.resize(nk);
  for (std::uint32_t i = 0; i < nk; ++i) m.buckets[i] = c.u64();
  return c.ok;
}

// A metric section: u32 metric count, then each metric. The deterministic
// section's encoded bytes are exactly one of these — the unit of the
// bitwise-parity contract.
std::vector<unsigned char> encode_section(const std::vector<MetricSnapshot>& metrics) {
  std::vector<unsigned char> out;
  put_u32(out, static_cast<std::uint32_t>(metrics.size()));
  for (const auto& m : metrics) encode_metric(out, m);
  return out;
}

bool decode_section(Cursor& c, std::vector<MetricSnapshot>& out) {
  std::uint32_t n = c.u32();
  if (!c.ok) return false;
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    MetricSnapshot m;
    if (!decode_metric(c, m)) return false;
    out.push_back(std::move(m));
  }
  return true;
}

std::atomic<TimelineWriter*> g_active{nullptr};

}  // namespace

bool timeline_deterministic(std::string_view name, MetricKind kind) {
  // Only the accumulator-derived fleet-day gauges are pure functions of
  // (config, seed, day). Counters reset on process restart, so a resumed
  // run's registry cannot reproduce them — they stay wall-clock.
  if (kind != MetricKind::kGauge) return false;
  if (name.substr(0, 10) != "sim.fleet.") return false;
  return name != "sim.fleet.sessions_per_sec";
}

TimelineWriter* TimelineWriter::active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

void TimelineWriter::install(TimelineWriter* w) noexcept {
  g_active.store(w, std::memory_order_release);
}

TimelineWriter::TimelineWriter(const std::string& path) : path_(path) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    status_ = Error::io("timeline: cannot open " + path);
    return;
  }
  std::vector<unsigned char> payload;
  put_u32(payload, kRecSchema);
  put_string(payload, kTimelineSchema);
  append_frame(payload);
}

TimelineWriter::~TimelineWriter() { close(); }

void TimelineWriter::append_frame(const std::vector<unsigned char>& payload) {
  if (!status_.ok() || closed_) return;
  unsigned char header[kHeaderSize];
  std::memcpy(header, kMagic, 4);
  std::vector<unsigned char> tail;
  put_u32(tail, kFrameVersion);
  put_u32(tail, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(header + 4, tail.data(), 8);
  std::vector<unsigned char> crc;
  put_u32(crc, crc32(payload.data(), payload.size()));
  out_.write(reinterpret_cast<const char*>(header), kHeaderSize);
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  out_.write(reinterpret_cast<const char*>(crc.data()), 4);
  if (!out_) status_ = Error::io("timeline: write failed for " + path_);
}

void TimelineWriter::append_day(std::uint64_t day, const RegistrySnapshot& snapshot) {
  if (!status_.ok() || closed_) return;
  std::vector<MetricSnapshot> det;
  std::vector<MetricSnapshot> wall;
  for (const auto& m : snapshot.metrics) {
    (timeline_deterministic(m.name, m.kind) ? det : wall).push_back(m);
  }
  // Sections inherit the snapshot's sorted-name order, so the deterministic
  // bytes depend only on the metric values, not on partition order.
  std::vector<unsigned char> det_bytes = encode_section(det);
  std::vector<unsigned char> wall_bytes = encode_section(wall);

  std::vector<unsigned char> payload;
  put_u32(payload, kRecDay);
  put_u64(payload, day);
  put_u32(payload, static_cast<std::uint32_t>(det_bytes.size()));
  payload.insert(payload.end(), det_bytes.begin(), det_bytes.end());
  payload.insert(payload.end(), wall_bytes.begin(), wall_bytes.end());
  append_frame(payload);
  if (status_.ok()) ++days_written_;
}

void TimelineWriter::append_alert(const HealthAlert& alert) {
  if (!status_.ok() || closed_) return;
  std::vector<unsigned char> payload;
  put_u32(payload, kRecAlert);
  put_u64(payload, alert.day);
  put_string(payload, alert.rule);
  put_string(payload, alert.metric);
  put_f64(payload, alert.observed);
  put_f64(payload, alert.threshold);
  put_string(payload, alert.message);
  append_frame(payload);
}

Status TimelineWriter::close() {
  if (closed_) return status_;
  closed_ = true;
  if (out_.is_open()) {
    out_.flush();
    if (!out_ && status_.ok()) status_ = Error::io("timeline: flush failed for " + path_);
    out_.close();
  }
  return status_;
}

Expected<TimelineReader> TimelineReader::open(const std::string& path) {
  auto in = std::make_shared<std::ifstream>(path, std::ios::binary);
  if (!*in) return Error::io("timeline: cannot open " + path);
  TimelineReader reader(std::move(in));
  // The first frame must be the schema header.
  if (!reader.has_next()) return Error::corrupt("timeline: empty file " + path);
  auto frame = reader.read_frame();
  if (!frame) return frame.error();
  Cursor c{frame->data(), frame->size()};
  std::uint32_t type = c.u32();
  std::string schema = c.str();
  if (!c.ok || type != kRecSchema) {
    return Error::corrupt("timeline: missing schema header in " + path);
  }
  if (schema != kTimelineSchema) {
    return Error::corrupt("timeline: unknown schema '" + schema + "' in " + path);
  }
  return reader;
}

bool TimelineReader::has_next() {
  if (!in_ || !in_->good()) return false;
  return in_->peek() != std::ifstream::traits_type::eof();
}

Expected<std::vector<unsigned char>> TimelineReader::read_frame() {
  unsigned char header[kHeaderSize];
  in_->read(reinterpret_cast<char*>(header), kHeaderSize);
  if (in_->gcount() != static_cast<std::streamsize>(kHeaderSize)) {
    return Error::corrupt("timeline: truncated frame header");
  }
  if (std::memcmp(header, kMagic, 4) != 0) {
    return Error::corrupt("timeline: bad frame magic");
  }
  Cursor hc{header + 4, 8};
  std::uint32_t version = hc.u32();
  std::uint32_t len = hc.u32();
  if (version != kFrameVersion) {
    return Error::corrupt("timeline: unsupported frame version " + std::to_string(version));
  }
  if (len > kMaxPayload) {
    return Error::corrupt("timeline: frame length " + std::to_string(len) + " exceeds limit");
  }
  std::vector<unsigned char> payload(len);
  if (len > 0) {
    in_->read(reinterpret_cast<char*>(payload.data()), static_cast<std::streamsize>(len));
    if (in_->gcount() != static_cast<std::streamsize>(len)) {
      return Error::corrupt("timeline: truncated frame payload");
    }
  }
  unsigned char crc_bytes[4];
  in_->read(reinterpret_cast<char*>(crc_bytes), 4);
  if (in_->gcount() != 4) return Error::corrupt("timeline: truncated frame checksum");
  Cursor cc{crc_bytes, 4};
  std::uint32_t stored = cc.u32();
  if (stored != crc32(payload.data(), payload.size())) {
    return Error::corrupt("timeline: frame checksum mismatch");
  }
  return payload;
}

Expected<TimelineRecord> TimelineReader::next() {
  auto frame = read_frame();
  if (!frame) return frame.error();
  Cursor c{frame->data(), frame->size()};
  std::uint32_t type = c.u32();
  if (!c.ok) return Error::corrupt("timeline: empty record payload");

  TimelineRecord rec;
  if (type == kRecDay) {
    rec.type = TimelineRecord::Type::kDay;
    rec.day = c.u64();
    std::uint32_t det_len = c.u32();
    if (!c.take(0) || c.left < det_len) {
      return Error::corrupt("timeline: day record deterministic section overruns frame");
    }
    rec.deterministic_bytes.assign(c.p, c.p + det_len);
    Cursor dc{c.p, det_len};
    if (!decode_section(dc, rec.deterministic) || dc.left != 0) {
      return Error::corrupt("timeline: malformed deterministic section");
    }
    c.p += det_len;
    c.left -= det_len;
    if (!decode_section(c, rec.wallclock) || c.left != 0) {
      return Error::corrupt("timeline: malformed wall-clock section");
    }
  } else if (type == kRecAlert) {
    rec.type = TimelineRecord::Type::kAlert;
    rec.day = c.u64();
    rec.alert.day = rec.day;
    rec.alert.rule = c.str();
    rec.alert.metric = c.str();
    rec.alert.observed = c.f64();
    rec.alert.threshold = c.f64();
    rec.alert.message = c.str();
    if (!c.ok || c.left != 0) return Error::corrupt("timeline: malformed alert record");
  } else {
    return Error::corrupt("timeline: unknown record type " + std::to_string(type));
  }
  return rec;
}

Expected<std::vector<TimelineRecord>> TimelineReader::read_all() {
  std::vector<TimelineRecord> out;
  while (has_next()) {
    auto rec = next();
    if (!rec) return rec.error();
    out.push_back(std::move(*rec));
  }
  return out;
}

}  // namespace lingxi::obs
