// Fleet observability: bounded per-thread span tracer.
//
// A Tracer records begin/end spans into fixed-capacity per-thread rings —
// recording a span is two clock reads plus one ring slot write, no
// allocation, no cross-thread contention. When a ring fills, the newest
// span overwrites the oldest and the tracer counts the drop; write_json()
// merges every ring, sorted by start timestamp, into Chrome `trace_event`
// JSON ("X" complete events) loadable in chrome://tracing or Perfetto
// (https://ui.perfetto.dev — open the file directly).
//
// Same runtime-nullable model as the metrics Registry: Tracer::active() is
// one atomic load, a null tracer costs one branch per span site, and span
// names must be string literals (static lifetime) — the ring stores the
// pointer, never a copy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lingxi::obs {

class Tracer {
 public:
  /// `ring_capacity` spans retained per recording thread (oldest dropped
  /// first on overflow).
  explicit Tracer(std::size_t ring_capacity = 1 << 14);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide active tracer, or nullptr when tracing is off.
  static Tracer* active() noexcept;
  /// Install `t` as the active tracer (nullptr disables). Same lifecycle
  /// contract as Registry::install.
  static void install(Tracer* t) noexcept;

  /// Record one completed span. `name` must be a string literal (the
  /// pointer is stored). Timestamps are steady-clock microseconds as
  /// returned by now_us().
  void record(const char* name, std::uint64_t begin_us, std::uint64_t end_us);

  /// Steady-clock microseconds, the tracer's time base.
  static std::uint64_t now_us() noexcept;

  /// Spans dropped to ring overflow, across all threads.
  std::uint64_t dropped_events() const;
  /// Spans currently retained, across all threads.
  std::uint64_t retained_events() const;

  /// Chrome trace_event JSON: {"displayTimeUnit": "ms",
  /// "otherData": {"schema": "lingxi.obs.trace/v1", "dropped_events": N},
  /// "traceEvents": [{"name", "cat": "lingxi", "ph": "X", "ts", "dur",
  /// "pid": 0, "tid"}]}, events sorted by (ts, tid, name). tid is the
  /// order in which recording threads first touched the tracer.
  void write_json(std::ostream& os) const;
  /// write_json to a file; false on I/O failure.
  bool write_json_file(const std::string& path) const;

 private:
  struct Span {
    const char* name = nullptr;
    std::uint64_t begin_us = 0;
    std::uint64_t end_us = 0;
  };
  struct Ring;

  Ring& local_ring();

  const std::uint64_t id_;
  const std::size_t capacity_;
  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span: records [construction, destruction) into the active tracer.
/// Captures the tracer once so an install() mid-span cannot tear. `name`
/// must be a string literal.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept
      : tracer_(Tracer::active()), name_(name),
        begin_us_(tracer_ ? Tracer::now_us() : 0) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->record(name_, begin_us_, Tracer::now_us());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  std::uint64_t begin_us_;
};

}  // namespace lingxi::obs

#define LINGXI_OBS_CONCAT_(a, b) a##b
#define LINGXI_OBS_CONCAT(a, b) LINGXI_OBS_CONCAT_(a, b)

/// Trace the enclosing scope as one span named `name` (string literal).
#define OBS_SPAN(name) \
  ::lingxi::obs::ScopedSpan LINGXI_OBS_CONCAT(obs_span_, __COUNTER__)(name)
