#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <unordered_map>

namespace lingxi::obs {
namespace {

std::atomic<Registry*> g_active{nullptr};
std::atomic<std::uint64_t> g_next_registry_id{1};

/// Heterogeneous lookup so the hot path probes the map with a string_view
/// and only materializes a std::string key on first touch of a name.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

void write_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void write_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    // Metric names are dotted identifiers; escape defensively anyway.
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

HistogramSpec::HistogramSpec(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {}

std::size_t HistogramSpec::bucket_for(double v) const noexcept {
  // First bound >= v; values past the last bound land in the overflow
  // bucket at index bounds_.size().
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

const HistogramSpec& HistogramSpec::latency_us() {
  static const HistogramSpec spec{[] {
    std::vector<double> b;
    for (double v = 1.0; v <= 67'108'864.0; v *= 4.0) b.push_back(v);
    return b;
  }()};  // 1us, 4us, ..., ~67s: 14 bounds + overflow
  return spec;
}

const HistogramSpec& HistogramSpec::rows() {
  static const HistogramSpec spec{[] {
    std::vector<double> b;
    for (double v = 1.0; v <= 4096.0; v *= 2.0) b.push_back(v);
    return b;
  }()};
  return spec;
}

double MetricSnapshot::quantile(double q) const noexcept {
  if (kind != MetricKind::kHistogram || count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t c = buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= rank) {
      // Interpolate within bucket i. Bucket 0 starts at the observed min;
      // the overflow bucket (i == bounds.size()) ends at the observed max.
      const double lower = i == 0 ? min : bounds[i - 1];
      const double upper = i < bounds.size() ? bounds[i] : max;
      const double fraction =
          std::clamp((rank - static_cast<double>(cum)) / static_cast<double>(c), 0.0, 1.0);
      return std::clamp(lower + fraction * (upper - lower), min, max);
    }
    cum += c;
  }
  return max;
}

const MetricSnapshot* RegistrySnapshot::find(std::string_view name) const noexcept {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void RegistrySnapshot::write_json(std::ostream& os) const {
  os << "{\"schema\": \"lingxi.obs.metrics/v1\", \"metrics\": [";
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": ";
    write_string(os, m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        os << ", \"kind\": \"counter\", \"value\": " << m.count;
        break;
      case MetricKind::kGauge:
        os << ", \"kind\": \"gauge\", \"value\": ";
        write_double(os, m.value);
        break;
      case MetricKind::kHistogram: {
        os << ", \"kind\": \"histogram\", \"count\": " << m.count
           << ", \"sum\": ";
        write_double(os, m.value);
        os << ", \"min\": ";
        write_double(os, m.min);
        os << ", \"max\": ";
        write_double(os, m.max);
        os << ", \"p50\": ";
        write_double(os, m.quantile(0.50));
        os << ", \"p95\": ";
        write_double(os, m.quantile(0.95));
        os << ", \"p99\": ";
        write_double(os, m.quantile(0.99));
        os << ", \"bounds\": [";
        for (std::size_t i = 0; i < m.bounds.size(); ++i) {
          if (i) os << ", ";
          write_double(os, m.bounds[i]);
        }
        os << "], \"buckets\": [";
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          if (i) os << ", ";
          os << m.buckets[i];
        }
        os << "]";
        break;
      }
    }
    os << "}";
  }
  os << "]}\n";
}

void RegistrySnapshot::write_prometheus(std::ostream& os) const {
  auto sanitize = [](std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      out.push_back(ok ? c : '_');
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
    return out;
  };
  for (const MetricSnapshot& m : metrics) {
    const std::string name = sanitize(m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << name << " counter\n" << name << " " << m.count << "\n";
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << name << " gauge\n" << name << " ";
        write_double(os, m.value);
        os << "\n";
        break;
      case MetricKind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          cum += m.buckets[i];
          os << name << "_bucket{le=\"";
          if (i < m.bounds.size()) {
            write_double(os, m.bounds[i]);
          } else {
            os << "+Inf";
          }
          os << "\"} " << cum << "\n";
        }
        // A spec-less empty histogram still exposes the +Inf bucket the
        // exposition format requires.
        if (m.buckets.empty()) os << name << "_bucket{le=\"+Inf\"} 0\n";
        os << name << "_sum ";
        write_double(os, m.value);
        os << "\n" << name << "_count " << m.count << "\n";
        break;
      }
    }
  }
}

/// One named metric's per-shard accumulation. A cell is exactly one kind for
/// its whole life; the kind is fixed on first touch.
struct Registry::Cell {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;    // counter value / histogram observations
  double value = 0.0;         // gauge value / histogram sum
  std::uint64_t updates = 0;  // gauge set() count, for the merge rule
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  const HistogramSpec* spec = nullptr;
  std::vector<std::uint64_t> buckets;
};

/// One recording thread's cells. Single writer; `mu` is effectively
/// uncontended and exists so snapshot() can read without torn values.
struct Registry::Shard {
  std::mutex mu;
  std::unordered_map<std::string, Cell, StringHash, std::equal_to<>> cells;
  /// Call-site lookaside: the instrumented sites pass string-literal names,
  /// so the view's data pointer identifies the site and the hot path
  /// replaces the string hash with a pointer hash plus one equality check
  /// against the map key (which also keeps a reused caller buffer with
  /// different contents correct — the check misses and the slow path
  /// re-resolves). Cell and key storage are stable across `cells` rehashes,
  /// so cached entries never dangle. Must be taken under `mu` like
  /// everything else in the shard.
  struct SiteEntry {
    std::string_view name;  ///< view of the map key, not the caller's buffer
    Cell* cell = nullptr;
  };
  std::unordered_map<const char*, SiteEntry> by_site;

  /// Find-or-create under `mu`; `kind`/`spec` apply only on first touch.
  Cell& cell_for(std::string_view name, MetricKind kind,
                 const HistogramSpec* spec = nullptr) {
    if (auto site = by_site.find(name.data());
        site != by_site.end() && site->second.name == name) {
      return *site->second.cell;
    }
    auto it = cells.find(name);
    if (it == cells.end()) {
      it = cells.emplace(std::string(name), Cell{}).first;
      Cell& cell = it->second;
      cell.kind = kind;
      if (spec != nullptr) {
        cell.spec = spec;
        cell.buckets.assign(spec->buckets(), 0);
      }
    }
    by_site[name.data()] = SiteEntry{it->first, &it->second};
    return it->second;
  }
};

Registry::Registry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry* Registry::active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

void Registry::install(Registry* r) noexcept {
  g_active.store(r, std::memory_order_release);
}

Registry::Shard& Registry::local_shard() {
  // The cache is keyed by the process-unique registry id, never a pointer:
  // ids are never reused, so a stale cache entry from a destroyed registry
  // can only miss, never dangle.
  struct TlsSlot {
    std::uint64_t registry_id = 0;
    Shard* shard = nullptr;
  };
  thread_local TlsSlot slot;
  if (slot.registry_id == id_ && slot.shard != nullptr) return *slot.shard;
  std::lock_guard<std::mutex> lock(shards_mu_);
  shards_.push_back(std::make_unique<Shard>());
  slot.registry_id = id_;
  slot.shard = shards_.back().get();
  return *slot.shard;
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.cell_for(name, MetricKind::kCounter).count += delta;
}

void Registry::set(std::string_view name, double value) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  Cell& cell = shard.cell_for(name, MetricKind::kGauge);
  cell.value = value;
  ++cell.updates;
}

void Registry::observe(std::string_view name, const HistogramSpec& spec,
                       double value) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  Cell& cell = shard.cell_for(name, MetricKind::kHistogram, &spec);
  ++cell.count;
  cell.value += value;
  cell.min = std::min(cell.min, value);
  cell.max = std::max(cell.max, value);
  ++cell.buckets[spec.bucket_for(value)];
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(shards_mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> cell_lock(shard->mu);
    auto it = shard->cells.find(name);
    if (it != shard->cells.end() && it->second.kind == MetricKind::kCounter) {
      total += it->second.count;
    }
  }
  return total;
}

RegistrySnapshot Registry::snapshot() const {
  // Merge all shards into name-keyed accumulators. Merge rules are
  // order-independent (sums; gauge by update count then value), so the
  // result is identical however threads divided the work.
  std::unordered_map<std::string, Cell, StringHash, std::equal_to<>> merged;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> cell_lock(shard->mu);
      for (const auto& [name, cell] : shard->cells) {
        auto it = merged.find(name);
        if (it == merged.end()) {
          merged.emplace(name, cell);
          continue;
        }
        Cell& into = it->second;
        switch (cell.kind) {
          case MetricKind::kCounter:
            into.count += cell.count;
            break;
          case MetricKind::kGauge:
            if (cell.updates > into.updates ||
                (cell.updates == into.updates && cell.value > into.value)) {
              into.value = cell.value;
            }
            into.updates = std::max(into.updates, cell.updates);
            break;
          case MetricKind::kHistogram:
            into.count += cell.count;
            into.value += cell.value;
            into.min = std::min(into.min, cell.min);
            into.max = std::max(into.max, cell.max);
            if (into.buckets.size() < cell.buckets.size()) {
              into.buckets.resize(cell.buckets.size(), 0);
            }
            for (std::size_t i = 0; i < cell.buckets.size(); ++i) {
              into.buckets[i] += cell.buckets[i];
            }
            break;
        }
      }
    }
  }
  RegistrySnapshot snap;
  snap.metrics.reserve(merged.size());
  for (auto& [name, cell] : merged) {
    MetricSnapshot m;
    m.name = name;
    m.kind = cell.kind;
    m.count = cell.count;
    m.value = cell.value;
    if (cell.kind == MetricKind::kHistogram) {
      m.min = cell.count ? cell.min : 0.0;
      m.max = cell.count ? cell.max : 0.0;
      if (cell.spec != nullptr) m.bounds = cell.spec->bounds();
      m.buckets = std::move(cell.buckets);
    }
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::write_json(std::ostream& os) const { snapshot().write_json(os); }

void Registry::write_prometheus(std::ostream& os) const {
  snapshot().write_prometheus(os);
}

bool Registry::write_json_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_json(os);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace lingxi::obs
