#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <ostream>

namespace lingxi::obs {
namespace {

std::atomic<Tracer*> g_active{nullptr};
std::atomic<std::uint64_t> g_next_tracer_id{1};

void write_name(std::ostream& os, const char* s) {
  os << '"';
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
  os << '"';
}

}  // namespace

/// One recording thread's span storage: a fixed ring where `next` wraps and
/// overwrites the oldest entry. Single writer; `mu` exists only so
/// write_json() can read a consistent view.
struct Tracer::Ring {
  std::mutex mu;
  std::vector<Span> spans;    // capacity slots, size() == capacity
  std::size_t next = 0;       // next slot to write
  std::size_t filled = 0;     // live entries, <= capacity
  std::uint64_t dropped = 0;  // overwritten entries
};

Tracer::Tracer(std::size_t ring_capacity)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

Tracer::~Tracer() = default;

Tracer* Tracer::active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

void Tracer::install(Tracer* t) noexcept {
  g_active.store(t, std::memory_order_release);
}

std::uint64_t Tracer::now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Ring& Tracer::local_ring() {
  // Same id-keyed TLS cache as Registry::local_shard — ids are never
  // reused, so a stale entry can only miss.
  struct TlsSlot {
    std::uint64_t tracer_id = 0;
    Ring* ring = nullptr;
  };
  thread_local TlsSlot slot;
  if (slot.tracer_id == id_ && slot.ring != nullptr) return *slot.ring;
  std::lock_guard<std::mutex> lock(rings_mu_);
  rings_.push_back(std::make_unique<Ring>());
  rings_.back()->spans.resize(capacity_);
  slot.tracer_id = id_;
  slot.ring = rings_.back().get();
  return *slot.ring;
}

void Tracer::record(const char* name, std::uint64_t begin_us,
                    std::uint64_t end_us) {
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  Span& slot = ring.spans[ring.next];
  if (ring.filled == ring.spans.size()) {
    ++ring.dropped;  // overwriting the oldest retained span
  } else {
    ++ring.filled;
  }
  slot.name = name;
  slot.begin_us = begin_us;
  slot.end_us = end_us;
  ring.next = (ring.next + 1) % ring.spans.size();
}

std::uint64_t Tracer::dropped_events() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

std::uint64_t Tracer::retained_events() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->filled;
  }
  return total;
}

void Tracer::write_json(std::ostream& os) const {
  struct Event {
    Span span;
    std::size_t tid = 0;
  };
  std::vector<Event> events;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
      Ring& ring = *rings_[tid];
      std::lock_guard<std::mutex> ring_lock(ring.mu);
      dropped += ring.dropped;
      // Oldest-first: the ring's oldest live entry sits at `next` once the
      // ring has wrapped, at 0 before.
      const std::size_t cap = ring.spans.size();
      const std::size_t start =
          ring.filled == cap ? ring.next : (ring.next + cap - ring.filled) % cap;
      for (std::size_t i = 0; i < ring.filled; ++i) {
        events.push_back(Event{ring.spans[(start + i) % cap], tid});
      }
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.span.begin_us != b.span.begin_us)
      return a.span.begin_us < b.span.begin_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return std::strcmp(a.span.name, b.span.name) < 0;
  });
  os << "{\"displayTimeUnit\": \"ms\", \"otherData\": {\"schema\": "
        "\"lingxi.obs.trace/v1\", \"dropped_events\": "
     << dropped << "}, \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i) os << ", ";
    os << "{\"name\": ";
    write_name(os, e.span.name);
    os << ", \"cat\": \"lingxi\", \"ph\": \"X\", \"ts\": " << e.span.begin_us
       << ", \"dur\": " << (e.span.end_us - e.span.begin_us)
       << ", \"pid\": 0, \"tid\": " << e.tid << "}";
  }
  os << "]}\n";
}

bool Tracer::write_json_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_json(os);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace lingxi::obs
