// Fleet observability: periodic sampler for long runs.
//
// A PeriodicSampler turns point-in-time process/fleet facts into gauges on
// the active Registry: RSS, live-user count, cumulative sessions, the
// sessions/sec rate since the previous sample, and predictor-pool flush
// occupancy derived from the pool counters already in the registry. The obs
// layer takes plain numbers so it depends on nothing above `common` —
// FleetRunner feeds it between chained day legs (the checkpoint-hook seam),
// which is where a long-lived fleet daemon would export health.
#pragma once

#include <cstdint>

namespace lingxi::obs {

class Registry;

/// Current resident-set size in bytes (0 where unsupported; Linux reads
/// /proc/self/statm).
std::uint64_t process_rss_bytes() noexcept;

class PeriodicSampler {
 public:
  /// Samples write to `registry`; a null registry makes sample() a no-op.
  /// `base_sessions` seeds the rate window (resumed runs pass the sessions
  /// already accumulated before this run).
  explicit PeriodicSampler(Registry* registry,
                           std::uint64_t base_sessions = 0) noexcept;

  /// Record one sample: gauges `sim.fleet.day`, `sim.fleet.live_users`,
  /// `sim.fleet.sessions_total`, `sim.fleet.sessions_per_sec` (since the
  /// previous sample; 0 on the first), `process.rss_bytes`, and
  /// `predictor.pool.mean_flush_occupancy` when the pool counters exist.
  void sample(std::uint64_t next_day, std::uint64_t live_users,
              std::uint64_t total_sessions);

 private:
  Registry* registry_;
  std::uint64_t last_sessions_;
  std::uint64_t last_us_ = 0;
  bool have_last_ = false;
};

}  // namespace lingxi::obs
