// Fleet observability: periodic sampler for long runs.
//
// A PeriodicSampler turns point-in-time process/fleet facts into gauges on
// the active Registry and, when a TimelineWriter / HealthMonitor is
// installed, feeds both from one merged snapshot per fleet day. The obs
// layer takes plain numbers (FleetDayFacts) so it depends on nothing above
// `common` — FleetRunner fills the facts for every fleet day from its merged
// FleetAccumulator, reconstructing interior day boundaries from the in-band
// per-day totals each leg collects, which is where a long-lived fleet daemon
// exports health.
//
// The facts-derived gauges (`sim.fleet.*` except the sessions/sec rate) are
// pure functions of (config, seed, day): they form the timeline's
// deterministic section and are bitwise stable across scheduler, thread
// count, sharding, predictor batching and checkpoint/kill/resume splices.
// The rate, RSS and occupancy gauges measure the machine and stay
// wall-clock.
#pragma once

#include <cstdint>

namespace lingxi::obs {

class Registry;

/// Current resident-set size in bytes (0 where unsupported; Linux reads
/// /proc/self/statm).
std::uint64_t process_rss_bytes() noexcept;
/// Peak resident-set size in bytes over the process lifetime (0 where
/// unsupported; Linux reads VmHWM from /proc/self/status).
std::uint64_t process_peak_rss_bytes() noexcept;

/// Fleet facts at one day boundary, all derived from the merged
/// FleetAccumulator (plus the calendar), so every field is deterministic
/// and splice-invariant.
struct FleetDayFacts {
  std::uint64_t day = 0;         ///< first day a resumed run would simulate
  std::uint64_t live_users = 0;
  std::uint64_t sessions_total = 0;
  std::uint64_t completed_total = 0;
  std::uint64_t stall_events_total = 0;
  std::uint64_t stall_exits_total = 0;
  std::uint64_t quality_switches_total = 0;
  std::uint64_t lingxi_optimizations_total = 0;
  std::uint64_t adjusted_user_days_total = 0;
  double watch_seconds_total = 0.0;
  double stall_seconds_total = 0.0;
  double mean_bitrate_kbps = 0.0;
  double completion_rate = 0.0;
};

class PeriodicSampler {
 public:
  /// Samples write to `registry`; a null registry makes sample() a no-op.
  /// `base_sessions` seeds the rate window (resumed runs pass the sessions
  /// already accumulated before this run).
  explicit PeriodicSampler(Registry* registry,
                           std::uint64_t base_sessions = 0) noexcept;

  /// Record one sample at the current steady-clock time:
  ///   * one deterministic `sim.fleet.*` gauge per FleetDayFacts field
  ///     (day, live_users, sessions_total, completed_total, ...);
  ///   * wall-clock gauges `sim.fleet.sessions_per_sec` (only once a real
  ///     window exists — never on the first sample, and a zero-microsecond
  ///     resample neither publishes nor collapses the window),
  ///     `process.rss_bytes`, `process.rss_peak_bytes`, and
  ///     `predictor.pool.mean_flush_occupancy` when the pool counters exist;
  ///   * then one merged snapshot feeds TimelineWriter::active() (a day
  ///     record) and HealthMonitor::active() (SLO evaluation), when
  ///     installed.
  void sample(const FleetDayFacts& facts);
  /// sample() with an injected clock (microseconds, monotonic) — the rate
  /// window is testable without real elapsed time.
  void sample_at(const FleetDayFacts& facts, std::uint64_t now_us);

 private:
  Registry* registry_;
  std::uint64_t last_sessions_;
  std::uint64_t last_us_ = 0;
  bool have_last_ = false;
};

}  // namespace lingxi::obs
