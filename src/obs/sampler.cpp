#include "obs/sampler.h"

#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lingxi::obs {

std::uint64_t process_rss_bytes() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(rss_pages) * 4096ull;
#else
  return 0;
#endif
}

PeriodicSampler::PeriodicSampler(Registry* registry,
                                 std::uint64_t base_sessions) noexcept
    : registry_(registry), last_sessions_(base_sessions) {}

void PeriodicSampler::sample(std::uint64_t next_day, std::uint64_t live_users,
                             std::uint64_t total_sessions) {
  if (registry_ == nullptr) return;
  const std::uint64_t now_us = Tracer::now_us();
  registry_->set("sim.fleet.day", static_cast<double>(next_day));
  registry_->set("sim.fleet.live_users", static_cast<double>(live_users));
  registry_->set("sim.fleet.sessions_total",
                 static_cast<double>(total_sessions));
  double rate = 0.0;
  if (have_last_ && now_us > last_us_ && total_sessions >= last_sessions_) {
    rate = static_cast<double>(total_sessions - last_sessions_) /
           (static_cast<double>(now_us - last_us_) * 1e-6);
  }
  registry_->set("sim.fleet.sessions_per_sec", rate);
  registry_->set("process.rss_bytes",
                 static_cast<double>(process_rss_bytes()));
  const std::uint64_t flushes = registry_->counter("predictor.pool.flushes");
  if (flushes > 0) {
    registry_->set("predictor.pool.mean_flush_occupancy",
                   static_cast<double>(registry_->counter(
                       "predictor.pool.queries")) /
                       static_cast<double>(flushes));
  }
  last_sessions_ = total_sessions;
  last_us_ = now_us;
  have_last_ = true;
}

}  // namespace lingxi::obs
