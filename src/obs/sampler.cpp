#include "obs/sampler.h"

#include <cstdio>
#include <cstring>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace lingxi::obs {

std::uint64_t process_rss_bytes() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(rss_pages) * 4096ull;
#else
  return 0;
#endif
}

std::uint64_t process_peak_rss_bytes() noexcept {
#if defined(__linux__)
  // VmHWM ("high water mark") is the peak RSS in kB; /proc/self/status is
  // line-oriented text.
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t peak_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + 6, "%llu", &kb) == 1) peak_kb = kb;
      break;
    }
  }
  std::fclose(f);
  return peak_kb * 1024ull;
#else
  return 0;
#endif
}

PeriodicSampler::PeriodicSampler(Registry* registry,
                                 std::uint64_t base_sessions) noexcept
    : registry_(registry), last_sessions_(base_sessions) {}

void PeriodicSampler::sample(const FleetDayFacts& facts) {
  sample_at(facts, Tracer::now_us());
}

void PeriodicSampler::sample_at(const FleetDayFacts& facts, std::uint64_t now_us) {
  if (registry_ == nullptr) return;
  // Deterministic section: accumulator-derived fleet gauges (see
  // timeline_deterministic()). Everything here must be a pure function of
  // (config, seed, day).
  registry_->set("sim.fleet.day", static_cast<double>(facts.day));
  registry_->set("sim.fleet.live_users", static_cast<double>(facts.live_users));
  registry_->set("sim.fleet.sessions_total", static_cast<double>(facts.sessions_total));
  registry_->set("sim.fleet.completed_total", static_cast<double>(facts.completed_total));
  registry_->set("sim.fleet.stall_events_total",
                 static_cast<double>(facts.stall_events_total));
  registry_->set("sim.fleet.stall_exits_total",
                 static_cast<double>(facts.stall_exits_total));
  registry_->set("sim.fleet.quality_switches_total",
                 static_cast<double>(facts.quality_switches_total));
  registry_->set("sim.fleet.lingxi_optimizations_total",
                 static_cast<double>(facts.lingxi_optimizations_total));
  registry_->set("sim.fleet.adjusted_user_days_total",
                 static_cast<double>(facts.adjusted_user_days_total));
  registry_->set("sim.fleet.watch_seconds_total", facts.watch_seconds_total);
  registry_->set("sim.fleet.stall_seconds_total", facts.stall_seconds_total);
  registry_->set("sim.fleet.mean_bitrate_kbps", facts.mean_bitrate_kbps);
  registry_->set("sim.fleet.completion_rate", facts.completion_rate);

  // Wall-clock section. The rate needs a real window: the first sample only
  // establishes one, and a zero-microsecond resample (sub-microsecond legs,
  // clock granularity) neither publishes a bogus rate nor collapses the
  // window it would divide by — the next distinct-time sample still
  // measures from the last published point.
  if (have_last_ && now_us > last_us_ && facts.sessions_total >= last_sessions_) {
    const double rate = static_cast<double>(facts.sessions_total - last_sessions_) /
                        (static_cast<double>(now_us - last_us_) * 1e-6);
    registry_->set("sim.fleet.sessions_per_sec", rate);
    last_sessions_ = facts.sessions_total;
    last_us_ = now_us;
  } else if (!have_last_) {
    last_sessions_ = facts.sessions_total;
    last_us_ = now_us;
    have_last_ = true;
  }
  registry_->set("process.rss_bytes", static_cast<double>(process_rss_bytes()));
  registry_->set("process.rss_peak_bytes",
                 static_cast<double>(process_peak_rss_bytes()));
  const std::uint64_t flushes = registry_->counter("predictor.pool.flushes");
  if (flushes > 0) {
    registry_->set("predictor.pool.mean_flush_occupancy",
                   static_cast<double>(registry_->counter(
                       "predictor.pool.queries")) /
                       static_cast<double>(flushes));
  }

  // One merged snapshot feeds the health plane: the timeline's day record
  // first, then SLO evaluation (so a rule's alert lands after the day it
  // judged).
  TimelineWriter* timeline = TimelineWriter::active();
  HealthMonitor* monitor = HealthMonitor::active();
  if (timeline != nullptr || monitor != nullptr) {
    const RegistrySnapshot snap = registry_->snapshot();
    if (timeline != nullptr) timeline->append_day(facts.day, snap);
    if (monitor != nullptr) monitor->evaluate(facts.day, snap);
  }
}

}  // namespace lingxi::obs
