// Fleet observability: durable per-day health timeline.
//
// A TimelineWriter turns the exit-time Registry dump into an append-only
// time series: one CRC-framed record per fleet day (schema
// `lingxi.obs.timeline/v1`), written at the same day-boundary seam the
// checkpoint hook rides, so a long-lived fleet daemon leaves a replayable
// "what has this deployment been doing, day over day" trail instead of a
// single snapshot at exit.
//
// Each day record is partitioned into two sections:
//
//   * a DETERMINISTIC section — the fleet-day gauges PeriodicSampler derives
//     from the merged FleetAccumulator (`sim.fleet.*` except
//     `sim.fleet.sessions_per_sec`; see timeline_deterministic()). These are
//     pure functions of (config, seed, day), so the section's bytes are
//     bitwise identical across scheduler mode x threads x users_per_shard x
//     predictor_batch AND across checkpoint/kill/resume splices — the
//     ObservabilityParity contract extended onto disk, pinned by the
//     DeterministicTimeline grid in tests/test_properties.cpp;
//   * a WALL-CLOCK section — everything else in the registry (latency
//     histograms, RSS, sessions/sec, batching counters), which measures the
//     machine rather than the simulation and legitimately differs run to run.
//
// Records are framed with the logstore discipline — magic | u32 version |
// u32 payload_len | payload | u32 crc32(payload) — under a timeline-specific
// magic. The framing is reimplemented here rather than linked from logstore
// because obs sits at the very bottom of the module graph (it depends only
// on common) while logstore sits far above it; the two codecs share the
// discipline, not the code. Truncated frames, flipped bits and unknown
// schema versions surface as Error::kCorrupt from the reader, never as UB.
//
// The writer is a runtime-nullable process-global install, like Registry
// and Tracer: when one is active (and a Registry is installed),
// PeriodicSampler appends a day record per fleet day. FleetRunner collects
// fleet-wide per-day accumulator totals in-band during each leg and emits
// the interior day records post-hoc at leg end, so every fleet day gets a
// record without forcing per-day leg chaining — the deterministic section
// is exact per day, while the wall-clock section of interior records is
// sampled at leg-end (its resolution is the leg cadence). Writing is
// serving-style:
// the first I/O error is latched in status() and later appends become
// no-ops — a lost timeline costs observability, never the run.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.h"
#include "obs/metrics.h"

namespace lingxi::obs {

/// The timeline schema identifier, stored in the file header record.
inline constexpr std::string_view kTimelineSchema = "lingxi.obs.timeline/v1";

/// True when `name`/`kind` belongs to the deterministic section of a day
/// record: the accumulator-derived `sim.fleet.*` gauges, minus the
/// wall-clock rate. Everything else — histograms, RSS, occupancy, every
/// counter (registry counters reset on process restart, so they cannot
/// splice) — goes to the wall-clock section.
bool timeline_deterministic(std::string_view name, MetricKind kind);

/// One structured SLO violation (see obs/health.h for the rules that emit
/// them). Alerts ride the timeline as their own record type.
struct HealthAlert {
  std::uint64_t day = 0;
  std::string rule;     ///< rule name (unique per monitor)
  std::string metric;   ///< registry metric the rule watches
  double observed = 0.0;
  double threshold = 0.0;
  std::string message;  ///< human-readable "what fired and why"

  bool operator==(const HealthAlert&) const = default;
};

/// One decoded timeline record.
struct TimelineRecord {
  enum class Type : std::uint32_t { kDay = 1, kAlert = 2 };

  Type type = Type::kDay;
  std::uint64_t day = 0;

  // kDay payload.
  std::vector<MetricSnapshot> deterministic;
  std::vector<MetricSnapshot> wallclock;
  /// The deterministic section's raw encoded bytes — the unit of the
  /// bitwise-parity contract (compare these, not re-encodings).
  std::vector<unsigned char> deterministic_bytes;

  // kAlert payload.
  HealthAlert alert;
};

/// Appends day snapshots and health alerts to one timeline file.
class TimelineWriter {
 public:
  /// Opens (truncates) `path` and writes the schema header record. A failed
  /// open is reported through status(); every later append is then a no-op.
  explicit TimelineWriter(const std::string& path);
  ~TimelineWriter();
  TimelineWriter(const TimelineWriter&) = delete;
  TimelineWriter& operator=(const TimelineWriter&) = delete;

  /// The process-wide active writer, or nullptr when no timeline is being
  /// kept. Install/uninstall while no fleet is running.
  static TimelineWriter* active() noexcept;
  static void install(TimelineWriter* w) noexcept;

  /// Append one day record: `snapshot` is partitioned by
  /// timeline_deterministic() into the two sections.
  void append_day(std::uint64_t day, const RegistrySnapshot& snapshot);
  /// Append one health.alert record.
  void append_alert(const HealthAlert& alert);

  /// Flush and report the first write error (OK while everything landed).
  /// Idempotent; also invoked by the destructor.
  Status close();

  /// First I/O error, if any. Appends after a failure are dropped.
  const Status& status() const noexcept { return status_; }
  /// Day records appended so far (header and alert records excluded).
  std::uint64_t days_written() const noexcept { return days_written_; }

 private:
  void append_frame(const std::vector<unsigned char>& payload);

  std::string path_;
  std::ofstream out_;
  Status status_;
  std::uint64_t days_written_ = 0;
  bool closed_ = false;
};

/// Streaming reader over one timeline file.
class TimelineReader {
 public:
  /// Opens `path` and validates the schema header record. Unknown schema or
  /// a torn header is Error::kCorrupt; an unopenable file Error::kIo.
  static Expected<TimelineReader> open(const std::string& path);

  /// True while records remain (clean end-of-file not yet reached).
  bool has_next();
  /// Decode the next record. A file ending mid-frame, a CRC mismatch or a
  /// malformed payload is Error::kCorrupt.
  Expected<TimelineRecord> next();

  /// Drain every remaining record, in file order.
  Expected<std::vector<TimelineRecord>> read_all();

 private:
  explicit TimelineReader(std::shared_ptr<std::ifstream> in) : in_(std::move(in)) {}

  /// Read and CRC-verify one raw frame payload.
  Expected<std::vector<unsigned char>> read_frame();

  /// Shared_ptr so the reader stays copyable/movable through Expected.
  std::shared_ptr<std::ifstream> in_;
};

}  // namespace lingxi::obs
