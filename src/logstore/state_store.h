// Durable per-user personalization state (§4 "Seamless Integration").
//
// On app exit the production system serializes each user's long-term state;
// on startup it restores it asynchronously after first render. This store
// keeps, per user id:
//   * the engagement LongTermState feeding the exit predictor, and
//   * the last optimized QoE parameters (OBO warm start for the next round).
// File format: one framed record (logstore/record.h) per user entry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "abr/qoe.h"
#include "common/expected.h"
#include "predictor/engagement_state.h"

namespace lingxi::logstore {

struct UserState {
  predictor::LongTermState engagement;
  abr::QoeParams best_params;
  bool has_params = false;  ///< OBO has produced an optimum at least once

  bool operator==(const UserState&) const = default;
};

class StateStore {
 public:
  /// In-memory access.
  void put(std::uint64_t user_id, UserState state);
  std::optional<UserState> get(std::uint64_t user_id) const;
  bool contains(std::uint64_t user_id) const;
  std::size_t size() const noexcept { return states_.size(); }
  void clear() { states_.clear(); }

  /// Durable snapshot / restore. Load replaces the in-memory contents.
  Status save(const std::string& path) const;
  Status load(const std::string& path);

  /// Payload codec, exposed for tests.
  static std::vector<unsigned char> encode(std::uint64_t user_id, const UserState& state);
  static Expected<std::pair<std::uint64_t, UserState>> decode(
      const std::vector<unsigned char>& payload);

 private:
  std::unordered_map<std::uint64_t, UserState> states_;
};

}  // namespace lingxi::logstore
