// Binary session trajectory logs — the storage behind the paper's offline
// analyses (§2.2's 1.5M playback trajectories).
//
// A SessionLogWriter appends one framed record (logstore/record.h) per
// playback session: user id, timestamp, video length, the session aggregates
// (watch time, exit flag, stall/switch counts, mean bitrate) and the full
// per-segment trace (level, bitrate, size, throughput, download time, stall
// time, buffer). SessionLogReader streams them back. All figures
// that bin per-segment exit behaviour (Fig. 3/4) can be regenerated from
// such a log instead of live simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.h"
#include "sim/session.h"

namespace lingxi::logstore {

struct SessionLogEntry {
  std::uint64_t user_id = 0;
  std::uint64_t timestamp = 0;  ///< seconds since epoch (caller-supplied)
  double video_duration = 0.0;  ///< full video length, seconds
  sim::SessionResult session;

  bool operator==(const SessionLogEntry& other) const;
};

/// Serialize one entry to a record payload (exposed for tests).
std::vector<unsigned char> encode_session(const SessionLogEntry& entry);
Expected<SessionLogEntry> decode_session(const std::vector<unsigned char>& payload);

/// Accumulates entries in memory and flushes them as a record stream.
class SessionLogWriter {
 public:
  void append(const SessionLogEntry& entry);
  std::size_t size() const noexcept { return entries_; }
  /// Serialized bytes of everything appended so far.
  const std::vector<unsigned char>& bytes() const noexcept { return bytes_; }
  Status save(const std::string& path) const;

 private:
  std::vector<unsigned char> bytes_;
  std::size_t entries_ = 0;
};

/// Parses a record stream produced by SessionLogWriter.
class SessionLogReader {
 public:
  static Expected<std::vector<SessionLogEntry>> read_bytes(
      const std::vector<unsigned char>& bytes);
  static Expected<std::vector<SessionLogEntry>> load(const std::string& path);
};

}  // namespace lingxi::logstore
