#include "logstore/state_store.h"

#include <utility>

#include "logstore/record.h"

namespace lingxi::logstore {
namespace {

void put_vec(std::vector<unsigned char>& out, const std::vector<double>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (double x : v) put_f64(out, x);
}

bool get_vec(const std::vector<unsigned char>& in, std::size_t& pos, std::vector<double>& v) {
  std::uint32_t n = 0;
  if (!get_u32(in, pos, n)) return false;
  if (n > 1024) return false;  // history vectors are capped at 8 in practice
  v.resize(n);
  for (auto& x : v) {
    if (!get_f64(in, pos, x)) return false;
  }
  return true;
}

}  // namespace

void StateStore::put(std::uint64_t user_id, UserState state) {
  states_[user_id] = std::move(state);
}

std::optional<UserState> StateStore::get(std::uint64_t user_id) const {
  const auto it = states_.find(user_id);
  if (it == states_.end()) return std::nullopt;
  return it->second;
}

bool StateStore::contains(std::uint64_t user_id) const {
  return states_.find(user_id) != states_.end();
}

std::vector<unsigned char> StateStore::encode(std::uint64_t user_id, const UserState& state) {
  std::vector<unsigned char> p;
  put_u64(p, user_id);
  put_vec(p, state.engagement.stall_durations);
  put_vec(p, state.engagement.stall_intervals);
  put_vec(p, state.engagement.stall_exit_intervals);
  put_f64(p, state.engagement.total_watch_time);
  put_u64(p, state.engagement.total_stall_events);
  put_u64(p, state.engagement.total_stall_exits);
  put_f64(p, state.best_params.stall_penalty);
  put_f64(p, state.best_params.switch_penalty);
  put_f64(p, state.best_params.hyb_beta);
  put_u32(p, state.has_params ? 1u : 0u);
  return p;
}

Expected<std::pair<std::uint64_t, UserState>> StateStore::decode(
    const std::vector<unsigned char>& payload) {
  std::size_t pos = 0;
  std::uint64_t user_id = 0;
  UserState s;
  std::uint32_t has_params = 0;
  const bool ok = get_u64(payload, pos, user_id) &&
                  get_vec(payload, pos, s.engagement.stall_durations) &&
                  get_vec(payload, pos, s.engagement.stall_intervals) &&
                  get_vec(payload, pos, s.engagement.stall_exit_intervals) &&
                  get_f64(payload, pos, s.engagement.total_watch_time) &&
                  get_u64(payload, pos, s.engagement.total_stall_events) &&
                  get_u64(payload, pos, s.engagement.total_stall_exits) &&
                  get_f64(payload, pos, s.best_params.stall_penalty) &&
                  get_f64(payload, pos, s.best_params.switch_penalty) &&
                  get_f64(payload, pos, s.best_params.hyb_beta) &&
                  get_u32(payload, pos, has_params);
  if (!ok || pos != payload.size()) return Error::corrupt("malformed user state payload");
  s.has_params = has_params != 0;
  return std::make_pair(user_id, std::move(s));
}

Status StateStore::save(const std::string& path) const {
  std::vector<unsigned char> bytes;
  for (const auto& [id, state] : states_) {
    write_record(bytes, encode(id, state));
  }
  return write_file(path, bytes);
}

Status StateStore::load(const std::string& path) {
  auto bytes = read_file(path);
  if (!bytes) return bytes.error();
  std::unordered_map<std::uint64_t, UserState> loaded;
  std::size_t pos = 0;
  while (pos < bytes->size()) {
    auto payload = read_record(*bytes, pos);
    if (!payload) return payload.error();
    auto entry = StateStore::decode(*payload);
    if (!entry) return entry.error();
    loaded[entry->first] = std::move(entry->second);
  }
  states_ = std::move(loaded);
  return {};
}

}  // namespace lingxi::logstore
