// Framed binary records: the storage primitive behind the state store.
//
// Layout per record: magic "LXRC" | u32 version | u32 payload_len |
// payload bytes | u32 crc32(payload). Readers verify magic, version,
// length bounds and checksum, so truncated or bit-flipped files surface as
// Error::kCorrupt instead of silently corrupt personalization state.
// This replaces the paper's HDF5 long-term state files (§4).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/expected.h"

namespace lingxi::logstore {

/// Append one framed record to `out`.
void write_record(std::vector<unsigned char>& out, const std::vector<unsigned char>& payload);

/// Read the record starting at `pos` in `bytes`; advances `pos` past it.
Expected<std::vector<unsigned char>> read_record(const std::vector<unsigned char>& bytes,
                                                 std::size_t& pos);

/// Streaming variant: read the next framed record from `in` without loading
/// the rest of the file. Callers detect a clean end-of-stream with
/// `in.peek() == EOF` before calling; a stream that ends mid-record is
/// reported as Error::kCorrupt.
Expected<std::vector<unsigned char>> read_record(std::istream& in);

/// Little-endian primitive packing helpers shared by payload codecs.
void put_u32(std::vector<unsigned char>& out, std::uint32_t v);
void put_u64(std::vector<unsigned char>& out, std::uint64_t v);
void put_f64(std::vector<unsigned char>& out, double v);
bool get_u32(const std::vector<unsigned char>& in, std::size_t& pos, std::uint32_t& v);
bool get_u64(const std::vector<unsigned char>& in, std::size_t& pos, std::uint64_t& v);
bool get_f64(const std::vector<unsigned char>& in, std::size_t& pos, double& v);

/// Whole-file helpers.
///
/// write_file is atomic and durable: the bytes are written to `<path>.tmp`,
/// flushed to stable storage (fsync) and closed with the result checked
/// (a destructor-close would drop delayed write errors on the floor), then
/// renamed over `path`. A crash, kill -9 or full disk at any point leaves
/// either the old file intact or the new one complete — never a torn
/// mixture — at the cost of a stale `<path>.tmp` that the next successful
/// write replaces. Each failing stage returns a distinct Error::kIo whose
/// message names the stage ("cannot open" / "write failed" / "fsync failed"
/// / "close failed" / "rename failed"), so callers can report which part of
/// the commit tore.
Status write_file(const std::string& path, const std::vector<unsigned char>& bytes);
Expected<std::vector<unsigned char>> read_file(const std::string& path);

/// fsync a directory fd so a just-committed rename inside it survives power
/// loss (the snapshot commit protocol's final durability point).
Status fsync_directory(const std::string& dir);

}  // namespace lingxi::logstore
