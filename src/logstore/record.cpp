#include "logstore/record.h"

#include <cstring>
#include <fstream>

#include "common/crc32.h"

namespace lingxi::logstore {
namespace {

constexpr char kMagic[4] = {'L', 'X', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxPayload = 64u << 20;  // 64 MiB sanity bound

}  // namespace

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xffu));
}

void put_f64(std::vector<unsigned char>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

bool get_u32(const std::vector<unsigned char>& in, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
  pos += 4;
  return true;
}

bool get_u64(const std::vector<unsigned char>& in, std::size_t& pos, std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  pos += 8;
  return true;
}

bool get_f64(const std::vector<unsigned char>& in, std::size_t& pos, double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(in, pos, bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

void write_record(std::vector<unsigned char>& out,
                  const std::vector<unsigned char>& payload) {
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, crc32(payload.data(), payload.size()));
}

Expected<std::vector<unsigned char>> read_record(const std::vector<unsigned char>& bytes,
                                                 std::size_t& pos) {
  if (pos + 4 > bytes.size() || std::memcmp(bytes.data() + pos, kMagic, 4) != 0) {
    return Error::corrupt("record magic mismatch");
  }
  pos += 4;
  std::uint32_t version = 0, len = 0;
  if (!get_u32(bytes, pos, version)) return Error::corrupt("truncated record header");
  if (version != kVersion) return Error::corrupt("unsupported record version");
  if (!get_u32(bytes, pos, len)) return Error::corrupt("truncated record header");
  if (len > kMaxPayload) return Error::corrupt("record payload too large");
  if (pos + len + 4 > bytes.size()) return Error::corrupt("truncated record payload");
  std::vector<unsigned char> payload(bytes.begin() + static_cast<long>(pos),
                                     bytes.begin() + static_cast<long>(pos + len));
  pos += len;
  std::uint32_t stored = 0;
  get_u32(bytes, pos, stored);
  if (stored != crc32(payload.data(), payload.size())) {
    return Error::corrupt("record CRC mismatch");
  }
  return payload;
}

Status write_file(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Error::io("cannot open for write: " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) return Error::io("write failed: " + path);
  return {};
}

Expected<std::vector<unsigned char>> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Error::io("cannot open: " + path);
  return std::vector<unsigned char>((std::istreambuf_iterator<char>(f)),
                                    std::istreambuf_iterator<char>());
}

}  // namespace lingxi::logstore
