#include "logstore/record.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32.h"

namespace lingxi::logstore {
namespace {

constexpr char kMagic[4] = {'L', 'X', 'R', 'C'};
// v2: session payloads carry the stall/switch/mean-bitrate aggregates.
// Framing is unchanged, but v1 files must fail the version check instead of
// being misparsed under the new payload layout.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMaxPayload = 64u << 20;  // 64 MiB sanity bound
constexpr std::size_t kHeaderSize = 12;  // magic + version + payload_len

std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

/// Validates a 12-byte frame header (magic, version, length bound); returns
/// the payload length. Shared by the in-memory and streaming readers so the
/// two paths can never diverge on what a valid frame is.
Expected<std::uint32_t> parse_frame_header(const unsigned char* header) {
  if (std::memcmp(header, kMagic, 4) != 0) return Error::corrupt("record magic mismatch");
  if (load_u32(header + 4) != kVersion) return Error::corrupt("unsupported record version");
  const std::uint32_t len = load_u32(header + 8);
  if (len > kMaxPayload) return Error::corrupt("record payload too large");
  return len;
}

}  // namespace

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xffu));
}

void put_f64(std::vector<unsigned char>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

bool get_u32(const std::vector<unsigned char>& in, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
  pos += 4;
  return true;
}

bool get_u64(const std::vector<unsigned char>& in, std::size_t& pos, std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  pos += 8;
  return true;
}

bool get_f64(const std::vector<unsigned char>& in, std::size_t& pos, double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(in, pos, bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

void write_record(std::vector<unsigned char>& out,
                  const std::vector<unsigned char>& payload) {
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, crc32(payload.data(), payload.size()));
}

Expected<std::vector<unsigned char>> read_record(const std::vector<unsigned char>& bytes,
                                                 std::size_t& pos) {
  if (pos + kHeaderSize > bytes.size()) {
    // The 4-byte magic check first so a wrong-format file reads as such
    // rather than as a truncated one.
    if (pos + 4 > bytes.size() || std::memcmp(bytes.data() + pos, kMagic, 4) != 0) {
      return Error::corrupt("record magic mismatch");
    }
    return Error::corrupt("truncated record header");
  }
  auto len = parse_frame_header(bytes.data() + pos);
  if (!len) return len.error();
  pos += kHeaderSize;
  if (pos + *len + 4 > bytes.size()) return Error::corrupt("truncated record payload");
  std::vector<unsigned char> payload(bytes.begin() + static_cast<long>(pos),
                                     bytes.begin() + static_cast<long>(pos + *len));
  pos += *len;
  std::uint32_t stored = 0;
  get_u32(bytes, pos, stored);
  if (stored != crc32(payload.data(), payload.size())) {
    return Error::corrupt("record CRC mismatch");
  }
  return payload;
}

Expected<std::vector<unsigned char>> read_record(std::istream& in) {
  unsigned char header[kHeaderSize];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return Error::corrupt("truncated record header");
  }
  auto len = parse_frame_header(header);
  if (!len) return len.error();
  std::vector<unsigned char> body(*len + 4);
  in.read(reinterpret_cast<char*>(body.data()), static_cast<std::streamsize>(body.size()));
  if (in.gcount() != static_cast<std::streamsize>(body.size())) {
    return Error::corrupt("truncated record payload");
  }
  const std::uint32_t stored = load_u32(body.data() + *len);
  body.resize(*len);
  if (stored != crc32(body.data(), body.size())) {
    return Error::corrupt("record CRC mismatch");
  }
  return body;
}

Status write_file(const std::string& path, const std::vector<unsigned char>& bytes) {
  // Write-to-temp, fsync, close-with-check, rename: the destination is never
  // observable half-written, and a crash at any stage leaves the previous
  // file intact (see record.h). POSIX fds rather than ofstream because the
  // durability point (fsync) has no iostream equivalent and ofstream's
  // destructor close silently discards errors.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Error::io("cannot open for write: " + tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Error::io("write failed: " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Error::io("fsync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    // A deferred write error surfacing at close: the temp file's contents are
    // not trustworthy, so the commit must not happen.
    ::unlink(tmp.c_str());
    return Error::io("close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Error::io("rename failed: " + tmp + " -> " + path);
  }
  return {};
}

Status fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Error::io("cannot open directory for fsync: " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Error::io("directory fsync failed: " + dir);
  return {};
}

Expected<std::vector<unsigned char>> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Error::io("cannot open: " + path);
  return std::vector<unsigned char>((std::istreambuf_iterator<char>(f)),
                                    std::istreambuf_iterator<char>());
}

}  // namespace lingxi::logstore
