#include "logstore/session_log.h"

#include "logstore/record.h"

namespace lingxi::logstore {

bool SessionLogEntry::operator==(const SessionLogEntry& other) const {
  if (user_id != other.user_id || timestamp != other.timestamp ||
      video_duration != other.video_duration || session.exited != other.session.exited ||
      session.watch_time != other.session.watch_time ||
      session.stall_events != other.session.stall_events ||
      session.quality_switches != other.session.quality_switches ||
      session.mean_bitrate != other.session.mean_bitrate ||
      session.segments.size() != other.session.segments.size()) {
    return false;
  }
  for (std::size_t i = 0; i < session.segments.size(); ++i) {
    const auto& a = session.segments[i];
    const auto& b = other.session.segments[i];
    if (a.level != b.level || a.bitrate != b.bitrate || a.size != b.size ||
        a.throughput != b.throughput || a.download_time != b.download_time ||
        a.stall_time != b.stall_time || a.buffer_after != b.buffer_after) {
      return false;
    }
  }
  return true;
}

std::vector<unsigned char> encode_session(const SessionLogEntry& entry) {
  std::vector<unsigned char> p;
  put_u64(p, entry.user_id);
  put_u64(p, entry.timestamp);
  put_f64(p, entry.video_duration);
  put_u32(p, entry.session.exited ? 1u : 0u);
  put_f64(p, entry.session.watch_time);
  put_f64(p, entry.session.startup_delay);
  put_f64(p, entry.session.total_stall);
  put_u32(p, static_cast<std::uint32_t>(entry.session.stall_events));
  put_u32(p, static_cast<std::uint32_t>(entry.session.quality_switches));
  put_f64(p, entry.session.mean_bitrate);
  put_u32(p, static_cast<std::uint32_t>(entry.session.segments.size()));
  for (const auto& seg : entry.session.segments) {
    put_u32(p, static_cast<std::uint32_t>(seg.level));
    put_f64(p, seg.position);
    put_f64(p, seg.bitrate);
    put_f64(p, seg.size);
    put_f64(p, seg.throughput);
    put_f64(p, seg.download_time);
    put_f64(p, seg.stall_time);
    put_f64(p, seg.buffer_before);
    put_f64(p, seg.buffer_after);
    put_f64(p, seg.cumulative_stall);
    put_u32(p, static_cast<std::uint32_t>(seg.cumulative_stall_events));
  }
  return p;
}

Expected<SessionLogEntry> decode_session(const std::vector<unsigned char>& payload) {
  SessionLogEntry e;
  std::size_t pos = 0;
  std::uint32_t exited = 0, stall_events = 0, switches = 0, count = 0;
  if (!get_u64(payload, pos, e.user_id) || !get_u64(payload, pos, e.timestamp) ||
      !get_f64(payload, pos, e.video_duration) || !get_u32(payload, pos, exited) ||
      !get_f64(payload, pos, e.session.watch_time) ||
      !get_f64(payload, pos, e.session.startup_delay) ||
      !get_f64(payload, pos, e.session.total_stall) ||
      !get_u32(payload, pos, stall_events) || !get_u32(payload, pos, switches) ||
      !get_f64(payload, pos, e.session.mean_bitrate) || !get_u32(payload, pos, count)) {
    return Error::corrupt("truncated session header");
  }
  if (count > 1u << 20) return Error::corrupt("segment count out of range");
  e.session.exited = exited != 0;
  e.session.stall_events = stall_events;
  e.session.quality_switches = switches;
  e.session.segments.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto& seg = e.session.segments[i];
    seg.index = i;
    std::uint32_t level = 0, events = 0;
    const bool ok = get_u32(payload, pos, level) && get_f64(payload, pos, seg.position) &&
                    get_f64(payload, pos, seg.bitrate) && get_f64(payload, pos, seg.size) &&
                    get_f64(payload, pos, seg.throughput) &&
                    get_f64(payload, pos, seg.download_time) &&
                    get_f64(payload, pos, seg.stall_time) &&
                    get_f64(payload, pos, seg.buffer_before) &&
                    get_f64(payload, pos, seg.buffer_after) &&
                    get_f64(payload, pos, seg.cumulative_stall) &&
                    get_u32(payload, pos, events);
    if (!ok) return Error::corrupt("truncated segment record");
    seg.level = level;
    seg.cumulative_stall_events = events;
  }
  if (pos != payload.size()) return Error::corrupt("trailing bytes in session payload");
  return e;
}

void SessionLogWriter::append(const SessionLogEntry& entry) {
  write_record(bytes_, encode_session(entry));
  ++entries_;
}

Status SessionLogWriter::save(const std::string& path) const {
  return write_file(path, bytes_);
}

Expected<std::vector<SessionLogEntry>> SessionLogReader::read_bytes(
    const std::vector<unsigned char>& bytes) {
  std::vector<SessionLogEntry> entries;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    auto payload = read_record(bytes, pos);
    if (!payload) return payload.error();
    auto entry = decode_session(*payload);
    if (!entry) return entry.error();
    entries.push_back(std::move(*entry));
  }
  return entries;
}

Expected<std::vector<SessionLogEntry>> SessionLogReader::load(const std::string& path) {
  auto bytes = read_file(path);
  if (!bytes) return bytes.error();
  return read_bytes(*bytes);
}

}  // namespace lingxi::logstore
