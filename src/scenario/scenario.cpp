#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace lingxi::scenario {

std::size_t ScenarioScript::arrival_day(std::size_t user) const noexcept {
  std::size_t arrival = 0;
  for (const auto& crowd : flash_crowds) {
    if (crowd.cohort.contains(user)) arrival = std::max(arrival, crowd.arrival_day);
  }
  return arrival;
}

std::size_t ScenarioScript::generations_before(std::size_t user,
                                               std::size_t day) const noexcept {
  std::size_t generation = 0;
  for (const auto& churn : churns) {
    if (churn.day < day && churn.cohort.contains(user)) ++generation;
  }
  return generation;
}

std::size_t ScenarioScript::generations_through(std::size_t user,
                                                std::size_t day) const noexcept {
  std::size_t generation = 0;
  for (const auto& churn : churns) {
    if (churn.day <= day && churn.cohort.contains(user)) ++generation;
  }
  return generation;
}

double ScenarioScript::bandwidth_scale(std::size_t user, std::size_t day) const noexcept {
  double scale = 1.0;
  for (const auto& shock : shocks) {
    if (day >= shock.first_day && day < shock.last_day && shock.cohort.contains(user)) {
      scale *= shock.bandwidth_scale;
    }
  }
  return scale;
}

double ScenarioScript::sd_scale(std::size_t user, std::size_t day) const noexcept {
  double scale = 1.0;
  for (const auto& shock : shocks) {
    if (day >= shock.first_day && day < shock.last_day && shock.cohort.contains(user)) {
      scale *= shock.sd_scale;
    }
  }
  return scale;
}

std::size_t ScenarioScript::sessions_on(std::size_t user, std::size_t day,
                                        std::size_t base) const noexcept {
  if (day < arrival_day(user)) return 0;
  double multiplier = 1.0;
  for (const auto& curve : curves) {
    if (!curve.multipliers.empty() && curve.cohort.contains(user)) {
      multiplier *= curve.multipliers[day % curve.multipliers.size()];
    }
  }
  if (multiplier == 1.0) return base;
  const long long scaled = std::llround(static_cast<double>(base) * multiplier);
  // The session stream key holds the in-day session index in 16 bits.
  return static_cast<std::size_t>(std::clamp(scaled, 0LL, 65535LL));
}

std::size_t ScenarioScript::sessions_before(std::size_t user, std::size_t day,
                                            std::size_t base) const noexcept {
  std::size_t total = 0;
  for (std::size_t d = 0; d < day; ++d) total += sessions_on(user, d, base);
  return total;
}

const user::UserPopulation::Config* ScenarioScript::population_override(
    std::size_t user) const noexcept {
  for (const auto& override_ : cohorts) {
    if (override_.cohort.contains(user)) return &override_.population;
  }
  return nullptr;
}

namespace {

Status check_cohort(const Cohort& cohort, const char* what) {
  if (cohort.stride == 0) {
    return Error::invalid_arg(std::string(what) + ": cohort stride must be > 0");
  }
  if (cohort.phase >= cohort.stride) {
    return Error::invalid_arg(std::string(what) + ": cohort phase must be < stride");
  }
  return {};
}

bool finite_non_negative(double value) {
  return std::isfinite(value) && value >= 0.0;
}

}  // namespace

Status ScenarioScript::validate(std::size_t users, std::size_t days) const {
  if (empty()) return {};
  if (users >= (1ULL << kGenerationShift)) {
    return Error::invalid_arg("scenario: fleet too large for generation streams");
  }
  for (const auto& shock : shocks) {
    if (Status s = check_cohort(shock.cohort, "bandwidth shock"); !s.ok()) return s;
    if (shock.first_day >= shock.last_day || shock.last_day > days) {
      return Error::invalid_arg("bandwidth shock: window must satisfy first < last <= days");
    }
    if (!finite_non_negative(shock.bandwidth_scale) || shock.bandwidth_scale == 0.0 ||
        !finite_non_negative(shock.sd_scale)) {
      return Error::invalid_arg("bandwidth shock: scales must be finite and positive");
    }
  }
  for (const auto& curve : curves) {
    if (Status s = check_cohort(curve.cohort, "session curve"); !s.ok()) return s;
    if (curve.multipliers.empty()) {
      return Error::invalid_arg("session curve: multipliers must be non-empty");
    }
    for (double m : curve.multipliers) {
      if (!finite_non_negative(m)) {
        return Error::invalid_arg("session curve: multipliers must be finite and >= 0");
      }
    }
  }
  for (const auto& crowd : flash_crowds) {
    if (Status s = check_cohort(crowd.cohort, "flash crowd"); !s.ok()) return s;
    if (crowd.arrival_day >= days) {
      return Error::invalid_arg("flash crowd: arrival day must precede the horizon");
    }
  }
  for (const auto& churn : churns) {
    if (Status s = check_cohort(churn.cohort, "churn"); !s.ok()) return s;
    if (churn.day == 0 || churn.day >= days) {
      return Error::invalid_arg("churn: day must be in [1, days)");
    }
  }
  for (const auto& override_ : cohorts) {
    if (Status s = check_cohort(override_.cohort, "cohort override"); !s.ok()) return s;
    const auto normalized = user::UserPopulation::Config::normalized(override_.population);
    if (!normalized.has_value()) return normalized.error();
  }
  return {};
}

ScenarioScript canonical_script(std::size_t users, std::size_t days) {
  ScenarioScript script;
  const std::size_t half = users / 2;
  const std::size_t quarter = users / 4;

  // CDN brownout over the first half of the fleet: the middle third of the
  // calendar at 45% of the profiled mean, with within-session variability
  // up 1.5x (a congested edge is also burstier).
  BandwidthShock brownout;
  brownout.cohort = {0, half, 1, 0};
  brownout.first_day = days / 3;
  brownout.last_day = std::max(brownout.first_day + 1, (2 * days) / 3);
  brownout.bandwidth_scale = 0.45;
  brownout.sd_scale = 1.5;
  script.shocks.push_back(brownout);

  // Flash crowd: the last quarter of the slots joins cold at mid-calendar.
  FlashCrowd crowd;
  crowd.cohort = {users - quarter, users, 1, 0};
  crowd.arrival_day = std::max<std::size_t>(1, days / 2);
  script.flash_crowds.push_back(crowd);

  // Churn: the second quarter of the fleet is replaced two thirds in.
  ChurnEvent churn;
  churn.cohort = {quarter, 2 * quarter, 1, 0};
  churn.day = std::clamp<std::size_t>((2 * days) / 3, 1, days - 1);
  script.churns.push_back(churn);

  // Weekday/weekend diurnal curve over the whole fleet.
  SessionCurve diurnal;
  diurnal.cohort = {0, users, 1, 0};
  diurnal.multipliers = {1.0, 1.25, 0.75, 1.0, 1.0, 1.5, 0.5};
  script.curves.push_back(diurnal);

  // "Mobile" device cohort on every 4th slot (phase 1): tolerance mixture
  // shifted toward the low bands, slightly more stall-sensitive archetypes.
  CohortOverride mobile;
  mobile.cohort = {0, users, 4, 1};
  mobile.population.sensitive_fraction = 0.50;
  mobile.population.threshold_fraction = 0.35;
  mobile.population.insensitive_fraction = 0.15;
  mobile.population.low_tolerance_fraction = 0.40;
  mobile.population.mid_tolerance_fraction = 0.45;
  mobile.population.high_tolerance_fraction = 0.10;
  mobile.population.very_high_tolerance_fraction = 0.05;
  script.cohorts.push_back(mobile);

  return script;
}

}  // namespace lingxi::scenario
