// ScenarioScript: deterministic world events on the fleet's day timeline.
//
// Every run of the base FleetRunner is a stationary population, but the
// paper's setting is a live production fleet where the world moves: CDN
// degradations hit whole regions, flash crowds arrive for live events,
// users churn in and out mid-experiment, and device cohorts differ in
// stall tolerance. A ScenarioScript layers those events on a fleet run as
// *pure functions of (user, day)*:
//
//   * BandwidthShock — scales a cohort's NetworkProfile mean (and
//     optionally its within-session variability) for a day window;
//   * SessionCurve — diurnal modulation of sessions_per_user_day;
//   * FlashCrowd — a user block is absent until its scripted arrival day,
//     then joins cold (no engagement history, fresh optimizers) against
//     the warm incumbents;
//   * ChurnEvent — a cohort departs at a day boundary and is replaced by
//     fresh arrivals occupying the same user slots (new identity streams);
//   * CohortOverride — maps a cohort onto a different
//     user::UserPopulation::Config (device / tolerance heterogeneity).
//
// Determinism contract: the script is part of FleetConfig, and every event
// effect derives only from (seed, user, day) — never from thread identity,
// scheduler mode, shard size or batch composition. Scenario-on runs are
// therefore bitwise identical across the whole scheduling grid, and an
// EMPTY script is byte-for-byte the unscripted run (the runner takes the
// exact pre-scenario code paths when empty()). Replacement arrivals get
// fresh random streams by folding a per-slot generation counter into the
// stream user id (user | generation << kGenerationShift), so generation 0
// reproduces the unscripted streams exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/expected.h"
#include "user/user_population.h"

namespace lingxi::scenario {

/// Bit position of the per-slot generation counter inside the stream user
/// id. Limits fleets to 2^40 user slots (checked by validate()) and leaves
/// 24 bits of generation headroom — far beyond any script's churn count.
inline constexpr unsigned kGenerationShift = 40;

/// A deterministic subset of the fleet's user slots: the half-open range
/// [first_user, last_user), optionally thinned to every stride-th slot.
/// Stride-based cohorts interleave across shards, which is exactly what the
/// parity tests want: no cohort boundary may align with a shard boundary.
struct Cohort {
  std::size_t first_user = 0;
  std::size_t last_user = std::numeric_limits<std::size_t>::max();  ///< exclusive
  std::size_t stride = 1;  ///< select every stride-th slot of the range
  std::size_t phase = 0;   ///< offset within the stride, in [0, stride)

  bool contains(std::size_t user) const noexcept {
    return stride > 0 && user >= first_user && user < last_user &&
           (user - first_user) % stride == phase;
  }
};

/// Correlated bandwidth degradation (or boost): for days in
/// [first_day, last_day) the cohort's NetworkProfile mean is scaled by
/// `bandwidth_scale` (clamped to the population's [min, max] band at use
/// site) and its within-session variability by `sd_scale`. Overlapping
/// shocks compose multiplicatively.
struct BandwidthShock {
  Cohort cohort;
  std::size_t first_day = 0;
  std::size_t last_day = 0;  ///< exclusive
  double bandwidth_scale = 1.0;
  double sd_scale = 1.0;
};

/// Diurnal session-count curve: day d runs
/// round(base * multipliers[d % multipliers.size()]) sessions for the
/// cohort. Multiple matching curves compose multiplicatively; a multiplier
/// of 0 yields an inactive day (no sessions, no drift draw).
struct SessionCurve {
  Cohort cohort;
  std::vector<double> multipliers;
};

/// Flash-crowd arrival: the cohort's slots are absent (zero sessions)
/// before `arrival_day` and join cold on it — empty engagement history and
/// warmup counted from their first real session, against warm incumbents.
struct FlashCrowd {
  Cohort cohort;
  std::size_t arrival_day = 0;
};

/// Population churn: at the `day` boundary the cohort's current users
/// depart — their per-user summaries are emitted then, exactly as at the
/// horizon — and fresh replacement users arrive in the same slots with new
/// (seed, user, generation) identity streams and cold optimizers.
struct ChurnEvent {
  Cohort cohort;
  std::size_t day = 0;  ///< must be >= 1: day 0 users are the initial fleet
};

/// Heterogeneous device / tolerance cohort: members sample their user model
/// from `population` instead of FleetConfig::population. Applies to every
/// generation of the slot (device class outlives churn). First matching
/// override wins. Only the runner's DEFAULT user factory honours overrides;
/// a custom set_user_factory bypasses them by design.
struct CohortOverride {
  Cohort cohort;
  user::UserPopulation::Config population;
};

/// An ordered set of scripted world events. The runner never iterates the
/// event lists directly; it asks the pure (user, day) queries below, which
/// is what keeps every effect independent of scheduling.
struct ScenarioScript {
  std::vector<BandwidthShock> shocks;
  std::vector<SessionCurve> curves;
  std::vector<FlashCrowd> flash_crowds;
  std::vector<ChurnEvent> churns;
  std::vector<CohortOverride> cohorts;

  /// True when no event is scripted: the runner must behave byte-for-byte
  /// like the pre-scenario code (it skips the scenario paths entirely).
  bool empty() const noexcept {
    return shocks.empty() && curves.empty() && flash_crowds.empty() &&
           churns.empty() && cohorts.empty();
  }

  // --- Pure (user, day) queries -------------------------------------------

  /// First day the slot is active: the latest matching flash-crowd arrival,
  /// 0 when the slot is part of the initial fleet.
  std::size_t arrival_day(std::size_t user) const noexcept;

  /// Generation occupying the slot STRICTLY BEFORE `day` (churns with
  /// day' < day). This is the construction-time generation of a leg
  /// starting at `day`: a churn scheduled exactly at a leg boundary belongs
  /// to the leg that simulates that day, which is what makes checkpoint
  /// splices bitwise invisible.
  std::size_t generations_before(std::size_t user, std::size_t day) const noexcept;

  /// Generation occupying the slot ON `day` (churns with day' <= day) —
  /// what begin_day() rolls the task forward to.
  std::size_t generations_through(std::size_t user, std::size_t day) const noexcept;

  /// Product of the bandwidth scales of every shock covering (user, day);
  /// 1.0 when none does.
  double bandwidth_scale(std::size_t user, std::size_t day) const noexcept;
  /// Product of the sd scales of every shock covering (user, day).
  double sd_scale(std::size_t user, std::size_t day) const noexcept;

  /// Sessions the slot runs on `day` given the configured base count:
  /// 0 before a flash-crowd arrival, otherwise round(base * curve product),
  /// clamped to the session-stream's 16-bit slot.
  std::size_t sessions_on(std::size_t user, std::size_t day, std::size_t base) const noexcept;

  /// Total sessions the slot ran on days [0, day) — the session_index_
  /// (warmup cursor) of a task starting at `day`. O(day); called once per
  /// task construction.
  std::size_t sessions_before(std::size_t user, std::size_t day, std::size_t base) const noexcept;

  /// The population config the slot samples its users from, or nullptr for
  /// the fleet default. First matching CohortOverride wins.
  const user::UserPopulation::Config* population_override(std::size_t user) const noexcept;

  /// Structural validation against a fleet shape: day windows inside
  /// [0, days], churn days >= 1, strides > 0, phases < stride, finite
  /// non-negative multipliers and scales, user count under the generation
  /// shift, and every override config normalizable. The runner asserts this
  /// at construction; benches call it directly for a readable error.
  Status validate(std::size_t users, std::size_t days) const;
};

/// The canonical "CDN brownout + flash crowd + churn" demo script shared by
/// bench_scenarios, the golden-fixture test and the docs:
///   * brownout: the first half of the fleet at 45% mean bandwidth for the
///     middle third of the calendar (sd up 1.5x);
///   * flash crowd: the last quarter of the fleet arrives mid-calendar;
///   * churn: the second quarter is replaced two thirds of the way in;
///   * diurnal: a 7-day weekday/weekend session curve over everyone;
///   * device cohort: every 4th slot (phase 1) is a "mobile" cohort with a
///     tolerance mixture shifted low.
/// Requires users >= 8 and days >= 3 so every event lands inside the run.
ScenarioScript canonical_script(std::size_t users, std::size_t days);

}  // namespace lingxi::scenario
