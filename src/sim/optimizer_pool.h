// A small fork-join helper for round-boundary optimizer fits.
//
// ShardScheduler::run_cohort parks every user whose optimization reached a
// round boundary (core::OptimizationRun fit parking) and hands the batch of
// fits here. Each fit touches only its own user's private state (GP, rng,
// ABR clone), so the fits of one wave are embarrassingly parallel and the
// results are independent of which thread ran which fit — the pool is
// bitwise invisible by construction, pinned by the determinism property
// grid over optimizer_threads.
//
// run() blocks until every index has been processed; the calling thread
// participates, so a pool with zero workers degrades to a plain loop (and a
// single-element batch never pays any synchronization).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lingxi::sim {

class OptimizerPool {
 public:
  /// `workers` extra threads beyond the caller; 0 means run() loops inline.
  explicit OptimizerPool(std::size_t workers);
  ~OptimizerPool();

  OptimizerPool(const OptimizerPool&) = delete;
  OptimizerPool& operator=(const OptimizerPool&) = delete;

  /// Invoke fn(0) .. fn(count-1), each exactly once, across the caller and
  /// the worker threads; returns when all have completed. fn must be safe to
  /// call concurrently for distinct indices. Not reentrant.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

  std::size_t workers() const noexcept { return threads_.size(); }

 private:
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
  };

  void worker_loop();
  /// Claim-and-run indices from `batch` until it is exhausted; returns the
  /// number of indices this thread completed.
  static std::size_t drain(Batch& batch);

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for a batch / shutdown
  std::condition_variable done_cv_;   ///< run() waits for batch completion
  std::shared_ptr<Batch> batch_;      ///< current batch, null when idle
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lingxi::sim
