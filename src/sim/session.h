// Session simulation: one video playback driven by a bitrate selector and
// an exit model.
//
// The same loop serves two roles, matching the paper:
//   * generating "real" synthetic sessions for the production-environment
//     substitute (user models from lingxi::user decide exits), and
//   * LingXi's Monte Carlo virtual playback (the exit-rate predictor supplies
//     exit probabilities) — see monte_carlo.h.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/player_env.h"
#include "trace/bandwidth.h"
#include "trace/video.h"

namespace lingxi::sim {

/// Everything an ABR algorithm may look at before choosing the next level.
struct AbrObservation {
  Seconds buffer = 0.0;
  Seconds buffer_max = 0.0;
  std::size_t last_level = 0;          ///< level of the previous segment
  bool first_segment = true;
  /// Recent throughput samples, oldest first (window kept by the session).
  std::vector<Kbps> throughput_history;
  std::vector<Seconds> download_time_history;
  const trace::Video* video = nullptr;  ///< for upcoming segment sizes
  std::size_t next_segment = 0;
  Seconds rtt = 0.0;
};

/// Per-segment playback record — the unit of the paper's trajectory logs.
struct SegmentRecord {
  std::size_t index = 0;
  /// Media time at which this segment starts playing (seconds into the
  /// session) — drives engagement-dependent exit behaviour.
  Seconds position = 0.0;
  std::size_t level = 0;
  Kbps bitrate = 0.0;
  Bytes size = 0.0;
  Kbps throughput = 0.0;
  Seconds download_time = 0.0;
  Seconds stall_time = 0.0;
  Seconds buffer_before = 0.0;
  Seconds buffer_after = 0.0;
  /// Cumulative stall time in the session up to and including this segment.
  Seconds cumulative_stall = 0.0;
  std::size_t cumulative_stall_events = 0;
};

/// Interface implemented by every ABR algorithm (lingxi::abr) — returns the
/// ladder level for the next segment.
class BitrateSelector {
 public:
  virtual ~BitrateSelector() = default;
  virtual std::size_t select(const AbrObservation& obs) = 0;
  /// Reset per-session state (throughput estimators etc.).
  virtual void reset() {}
};

/// Interface implemented by user models and by the LingXi exit predictor
/// bridge: probability that the viewer exits right after this segment.
class ExitModel {
 public:
  virtual ~ExitModel() = default;
  virtual void begin_session() {}
  virtual double exit_probability(const SegmentRecord& segment) = 0;
};

/// Result of one simulated playback session.
struct SessionResult {
  std::vector<SegmentRecord> segments;
  bool exited = false;              ///< user left before the video ended
  Seconds watch_time = 0.0;         ///< media seconds actually watched
  /// Time to first frame (the cold-start starvation of segment 0). Reported
  /// separately from rebuffering, as production players do.
  Seconds startup_delay = 0.0;
  Seconds total_stall = 0.0;
  std::size_t stall_events = 0;
  std::size_t quality_switches = 0;
  double mean_bitrate = 0.0;        ///< kbps averaged over watched segments
  bool completed() const noexcept { return !exited; }
};

/// A stall-driven exit (§5.5.1): the user left at the stalled segment or the
/// one right after it. `stall_threshold` filters sub-perceptual rebuffers.
bool exited_during_stall(const SessionResult& session,
                         Seconds stall_threshold = 0.05) noexcept;

/// QoE_lin (Eq. 1) of a finished session:
///   sum q(Q_k) - mu * sum stall_k - lambda * sum |q(Q_{k+1}) - q(Q_k)|.
/// The paper uses lambda = 1; both weights are explicit here.
double qoe_lin(const SessionResult& session, const trace::BitrateLadder& ladder,
               trace::QualityMetric metric, double stall_weight, double switch_weight = 1.0);

/// Simulates whole sessions.
class SessionSimulator {
 public:
  struct Config {
    PlayerConfig player;
    std::size_t throughput_window = 8;  ///< history length exposed to the ABR
    /// Stall shorter than this does not count as a user-visible stall event
    /// (sub-perceptual rebuffer).
    Seconds stall_event_threshold = 0.05;
    /// Re-derive B_max from the running bandwidth estimate every segment.
    bool adaptive_buffer_max = true;
  };

  explicit SessionSimulator(Config config) : config_(config) {}

  /// Play `video` through `abr` over `bandwidth`; `exit_model` may be null
  /// (never exits). Stops at video end or user exit.
  SessionResult run(const trace::Video& video, BitrateSelector& abr,
                    trace::BandwidthModel& bandwidth, ExitModel* exit_model, Rng& rng) const;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace lingxi::sim
