// Session simulation: one video playback driven by a bitrate selector and
// an exit model.
//
// The same loop serves two roles, matching the paper:
//   * generating "real" synthetic sessions for the production-environment
//     substitute (user models from lingxi::user decide exits), and
//   * LingXi's Monte Carlo virtual playback (the exit-rate predictor supplies
//     exit probabilities) — see monte_carlo.h.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/running_stats.h"
#include "common/units.h"
#include "sim/player_env.h"
#include "trace/bandwidth.h"
#include "trace/video.h"

namespace lingxi::sim {

/// Everything an ABR algorithm may look at before choosing the next level.
struct AbrObservation {
  Seconds buffer = 0.0;
  Seconds buffer_max = 0.0;
  std::size_t last_level = 0;          ///< level of the previous segment
  bool first_segment = true;
  /// Recent throughput samples, oldest first (window kept by the session).
  std::vector<Kbps> throughput_history;
  std::vector<Seconds> download_time_history;
  const trace::Video* video = nullptr;  ///< for upcoming segment sizes
  std::size_t next_segment = 0;
  Seconds rtt = 0.0;
};

/// Per-segment playback record — the unit of the paper's trajectory logs.
struct SegmentRecord {
  std::size_t index = 0;
  /// Media time at which this segment starts playing (seconds into the
  /// session) — drives engagement-dependent exit behaviour.
  Seconds position = 0.0;
  std::size_t level = 0;
  Kbps bitrate = 0.0;
  Bytes size = 0.0;
  Kbps throughput = 0.0;
  Seconds download_time = 0.0;
  Seconds stall_time = 0.0;
  Seconds buffer_before = 0.0;
  Seconds buffer_after = 0.0;
  /// Cumulative stall time in the session up to and including this segment.
  Seconds cumulative_stall = 0.0;
  std::size_t cumulative_stall_events = 0;
};

/// Interface implemented by every ABR algorithm (lingxi::abr) — returns the
/// ladder level for the next segment.
class BitrateSelector {
 public:
  virtual ~BitrateSelector() = default;
  virtual std::size_t select(const AbrObservation& obs) = 0;
  /// Reset per-session state (throughput estimators etc.).
  virtual void reset() {}
};

/// Interface implemented by user models and by the LingXi exit predictor
/// bridge: probability that the viewer exits right after this segment.
class ExitModel {
 public:
  virtual ~ExitModel() = default;
  virtual void begin_session() {}
  virtual double exit_probability(const SegmentRecord& segment) = 0;
};

/// Factory + batched evaluator for per-rollout exit models — what the
/// lockstep Monte Carlo path (MonteCarloEvaluator::evaluate_rollouts) needs
/// from the predictor side. The prepare()/flush() split lets cheap decisions
/// (e.g. non-stalled segments, which skip the net entirely) resolve inline
/// while expensive ones accumulate across rollouts into one batched forward.
/// For any model the prepare()+flush() probabilities must be bitwise
/// identical to exit_probability() on the same segment sequence — the
/// contract that makes batched and scalar rollouts produce identical fleet
/// checksums.
class BatchExitEvaluator {
 public:
  virtual ~BatchExitEvaluator() = default;
  /// Fresh exit model seeded with the live user state. Each rollout gets its
  /// own instance so independent sessions can advance in lockstep.
  virtual std::unique_ptr<ExitModel> make_model() const = 0;
  /// Advance `model` (a make_model() instance) with `segment`. When the exit
  /// probability is cheap to produce inline, write it to `out` and return
  /// true. Otherwise park the prepared query — order is remembered — for the
  /// next flush() and return false.
  virtual bool prepare(ExitModel& model, const SegmentRecord& segment,
                       double& out) const = 0;
  /// Evaluate every parked query as one batch, write the probabilities in
  /// park order, clear the parking lot, and return the count written.
  virtual std::size_t flush(double* out) const = 0;
  /// Drop any parked queries unevaluated — called when the driver abandons
  /// in-flight rollouts (pruning), whose queries would otherwise dangle.
  virtual void discard_parked() const = 0;
};

/// Result of one simulated playback session.
struct SessionResult {
  std::vector<SegmentRecord> segments;
  bool exited = false;              ///< user left before the video ended
  Seconds watch_time = 0.0;         ///< media seconds actually watched
  /// Time to first frame (the cold-start starvation of segment 0). Reported
  /// separately from rebuffering, as production players do.
  Seconds startup_delay = 0.0;
  Seconds total_stall = 0.0;
  std::size_t stall_events = 0;
  std::size_t quality_switches = 0;
  double mean_bitrate = 0.0;        ///< kbps averaged over watched segments
  bool completed() const noexcept { return !exited; }
};

/// A stall-driven exit (§5.5.1): the user left at the stalled segment or the
/// one right after it. `stall_threshold` filters sub-perceptual rebuffers.
bool exited_during_stall(const SessionResult& session,
                         Seconds stall_threshold = 0.05) noexcept;

/// QoE_lin (Eq. 1) of a finished session:
///   sum q(Q_k) - mu * sum stall_k - lambda * sum |q(Q_{k+1}) - q(Q_k)|.
/// The paper uses lambda = 1; both weights are explicit here.
double qoe_lin(const SessionResult& session, const trace::BitrateLadder& ladder,
               trace::QualityMetric metric, double stall_weight, double switch_weight = 1.0);

/// Simulates whole sessions.
class SessionSimulator {
 public:
  struct Config {
    PlayerConfig player;
    std::size_t throughput_window = 8;  ///< history length exposed to the ABR
    /// Stall shorter than this does not count as a user-visible stall event
    /// (sub-perceptual rebuffer).
    Seconds stall_event_threshold = 0.05;
    /// Re-derive B_max from the running bandwidth estimate every segment.
    bool adaptive_buffer_max = true;
  };

  explicit SessionSimulator(Config config) : config_(config) {}

  /// Play `video` through `abr` over `bandwidth`; `exit_model` may be null
  /// (never exits). Stops at video end or user exit.
  SessionResult run(const trace::Video& video, BitrateSelector& abr,
                    trace::BandwidthModel& bandwidth, ExitModel* exit_model, Rng& rng) const;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Incremental form of SessionSimulator::run: simulates one segment at a
/// time and pauses at the exit decision, so many independent sessions can
/// advance in lockstep with their exit probabilities evaluated as one batch
/// (Monte Carlo rollout batching). SessionSimulator::run is implemented on
/// top of this stepper, so driving it manually reproduces run() exactly,
/// rng draw for rng draw.
///
/// Protocol: advance() simulates the next segment and returns its record,
/// pending an exit decision — the caller must then call either resolve(p)
/// (draws the exit coin from the session rng, like run() with an exit model)
/// or skip() (no draw, like run() without one) before the next advance().
/// advance() returns nullptr once the session is over (video ended or the
/// viewer exited); take_result() then yields the final SessionResult.
///
/// The referenced simulator, video, abr, bandwidth model and rng must
/// outlive the stepper. Construction resets the ABR (as run() does); it does
/// NOT call ExitModel::begin_session — the stepper never sees an exit model.
class SessionStepper {
 public:
  SessionStepper(const SessionSimulator& sim, const trace::Video& video,
                 BitrateSelector& abr, trace::BandwidthModel& bandwidth, Rng& rng);

  const SegmentRecord* advance();
  void resolve(double exit_probability);
  void skip() noexcept;
  bool done() const noexcept { return done_; }
  SessionResult take_result();

 private:
  void finalize();

  const SessionSimulator& sim_;
  const trace::Video& video_;
  BitrateSelector& abr_;
  trace::BandwidthModel& bandwidth_;
  Rng& rng_;

  PlayerEnv env_;
  SessionResult result_;
  AbrObservation obs_;
  RunningStats bw_stats_;
  RunningStats bitrate_stats_;
  Seconds cumulative_stall_ = 0.0;
  std::size_t stall_events_ = 0;
  std::size_t next_segment_ = 0;
  bool pending_ = false;
  bool done_ = false;
};

}  // namespace lingxi::sim
