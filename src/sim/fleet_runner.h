// FleetRunner: population-scale simulation of user fleets.
//
// The Fig. 10-12 experiments roll core::LingXi forward over whole user
// populations, day by day and session by session. FleetRunner is the shared
// substrate for those experiments: it samples N users, shards them into
// fixed-size contiguous blocks, and dispatches the shards to a pool of
// worker threads (an LSQ-style work queue: many short heterogeneous jobs,
// one dispatcher, idle workers pull the next shard).
//
// Determinism is independent of the thread count by construction:
//   * every per-user random stream is derived only from (seed, user index,
//     day, session) — never from thread identity or execution order;
//   * sharding is a pure function of the user count, not of the pool size;
//   * per-shard results go into FleetAccumulator, whose state is integer
//     (fixed-point) so that merging is exactly associative and commutative.
// Hence the merged result is bitwise identical at 1, 4 or 64 threads, which
// is what makes the parallel fleet usable for paired A/B comparisons.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "abr/abr.h"
#include "common/rng.h"
#include "core/lingxi.h"
#include "predictor/hybrid.h"
#include "sim/session.h"
#include "trace/population.h"
#include "trace/video.h"
#include "user/user_model.h"
#include "user/user_population.h"

namespace lingxi::telemetry {
class TelemetrySink;
}

namespace lingxi::sim {

/// Immutable config-derived simulation context shared (read-only) by all
/// fleet workers.
struct FleetWorld {
  trace::PopulationModel networks;
  trace::VideoGenerator videos;
  SessionSimulator simulator;
  user::UserPopulation population;
};

/// Mergeable aggregate over simulated sessions.
///
/// All state is integral: times are stored in microsecond ticks and the
/// bitrate-time product in kbps-milliseconds, quantized once per session at
/// add_session() time. Integer addition is exactly associative and
/// commutative, so any shard partitioning and any merge tree produce the
/// same bits — the property the fleet tests assert and the scaling bench
/// checksums. (Bounds: ~5e10 session-seconds of watch time before the
/// bitrate-time product can overflow 63 bits at ladder-top bitrates.)
struct FleetAccumulator {
  static constexpr double kTicksPerSecond = 1e6;       ///< time resolution
  static constexpr double kBitrateTicksPerKbpsSec = 1e3;

  // Session tallies.
  std::uint64_t sessions = 0;
  std::uint64_t completed = 0;           ///< sessions the user watched to the end
  std::uint64_t measured_sessions = 0;   ///< sessions past the warmup window
  std::uint64_t measured_completed = 0;
  std::uint64_t stall_events = 0;
  std::uint64_t stall_exits = 0;         ///< stall-driven exits (§5.5.1)
  std::uint64_t quality_switches = 0;
  std::uint64_t users = 0;

  // Fixed-point sums.
  std::int64_t watch_ticks = 0;          ///< microseconds of media watched
  std::int64_t stall_ticks = 0;          ///< microseconds stalled
  std::int64_t startup_ticks = 0;        ///< microseconds of startup delay
  std::int64_t bitrate_time_ticks = 0;   ///< kbps-milliseconds (rate x watch)

  // LingXi counters summed over users (zero for control fleets).
  std::uint64_t lingxi_triggers = 0;
  std::uint64_t lingxi_optimizations = 0;
  std::uint64_t lingxi_pruned_preplay = 0;
  std::uint64_t lingxi_mc_evaluations = 0;
  std::uint64_t lingxi_mc_rollouts_pruned = 0;
  std::uint64_t adjusted_user_days = 0;  ///< user-days ending off the default params

  void add_session(const SessionResult& session, bool measured);
  void add_lingxi_stats(const core::LingXiStats& stats);
  void merge(const FleetAccumulator& other);

  // Derived metrics (same definitions as analytics::MetricAccumulator).
  double total_watch_time() const noexcept;
  double total_stall_time() const noexcept;
  double total_startup_delay() const noexcept;
  /// Watch-time-weighted mean bitrate (kbps).
  double mean_bitrate() const noexcept;
  double completion_rate() const noexcept;
  double measured_completion_rate() const noexcept;
  /// Sessions the user abandoned / all sessions.
  double exit_rate() const noexcept;
  /// Stall-driven exits per stall event.
  double stall_exit_rate() const noexcept;
  /// Stall seconds per 10000 watch seconds (the unit of Fig. 3(b)).
  double stall_per_10k() const noexcept;

  /// CRC32 over the raw integer state in field order — a cheap bitwise
  /// identity probe for "same result regardless of thread count".
  std::uint32_t checksum() const;
};

struct FleetConfig {
  std::size_t users = 100;
  std::size_t days = 1;
  std::size_t sessions_per_user_day = 12;
  /// Per-user sessions (counted across days) excluded from measured_*:
  /// LingXi needs history before its first optimization, and steady-state
  /// comparisons exclude cold start.
  std::size_t warmup_sessions = 0;
  /// Worker pool size; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 1;
  /// Shard granularity in users. Purely a scheduling knob: results are
  /// identical for any value; smaller shards balance heterogeneous users
  /// better, larger shards amortize per-shard setup.
  std::size_t users_per_shard = 8;
  /// Treatment switch: run LingXi per user (config `lingxi`) vs pinning
  /// `fixed_params` on the ABR.
  bool enable_lingxi = false;
  /// First day (0-based) on which LingXi may optimize. Before it the ABR is
  /// pinned to `lingxi.default_params` while engagement history still
  /// accrues — the AA period of the Fig. 12 difference-in-differences
  /// protocol. 0 (default) activates LingXi immediately; >= days gives a
  /// pure AA run.
  std::size_t intervention_day = 0;
  /// Day-to-day tolerance drift for data-driven users (§2.3).
  bool drift_user_tolerance = false;
  /// Batched-inference knob: lockstep batch size for LingXi's Monte Carlo
  /// rollouts — per optimization, up to this many candidate sessions advance
  /// together and their predictor forwards run as one batch. 0 keeps
  /// `lingxi.monte_carlo.batch_size` as configured; any value yields a
  /// bitwise-identical fleet checksum (the scalar/batched parity contract,
  /// asserted by tests/test_properties.cpp).
  std::size_t predictor_batch = 0;
  /// Lognormal sigma jittering each session's mean bandwidth around the
  /// user's profile (cellular commute vs home Wi-Fi); 0 disables.
  double session_jitter_sigma = 0.0;
  abr::QoeParams fixed_params;
  user::UserPopulation::Config population;
  trace::PopulationModel::Config network;
  trace::VideoGenerator::Config video;
  core::LingXiConfig lingxi;
  SessionSimulator::Config session;
};

class FleetRunner {
 public:
  using AbrFactory = std::function<std::unique_ptr<abr::AbrAlgorithm>()>;
  /// Builds the user model for one user. Invoked once per user with an Rng
  /// derived from (seed, user index); must be callable concurrently.
  using UserFactory =
      std::function<std::unique_ptr<user::UserModel>(std::size_t user_index, Rng& rng)>;
  using PredictorFactory = std::function<predictor::HybridExitPredictor()>;

  /// Default user factory: sample from `config.population`.
  FleetRunner(FleetConfig config, AbrFactory abr_factory);

  /// Override user sampling (e.g. the Fig. 10 rule-based 8x8 grid).
  void set_user_factory(UserFactory factory);
  /// Required when `config.enable_lingxi`. Invoked once per user from worker
  /// threads; the returned predictor's net is deep-copied before use, so a
  /// factory handing out a shared net is safe.
  void set_predictor_factory(PredictorFactory factory);

  /// Optional capture plane (telemetry/sink.h): the sink observes every
  /// completed session plus a per-user summary, from worker threads. Not
  /// owned; must outlive run(). Pass nullptr to detach.
  void set_telemetry_sink(telemetry::TelemetrySink* sink) { sink_ = sink; }

  /// Simulate the whole fleet. Bitwise-deterministic for a given seed,
  /// independent of `config().threads`.
  FleetAccumulator run(std::uint64_t seed) const;

  const FleetConfig& config() const noexcept { return config_; }

 private:
  void simulate_user(std::size_t user_index, std::uint64_t seed,
                     const FleetWorld& world, FleetAccumulator& acc) const;

  FleetConfig config_;
  AbrFactory abr_factory_;
  UserFactory user_factory_;
  PredictorFactory predictor_factory_;
  telemetry::TelemetrySink* sink_ = nullptr;
};

}  // namespace lingxi::sim
