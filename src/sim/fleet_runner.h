// FleetRunner: population-scale simulation of user fleets.
//
// The Fig. 10-12 experiments roll core::LingXi forward over whole user
// populations, day by day and session by session. FleetRunner is the shared
// substrate for those experiments: it samples N users, shards them into
// fixed-size contiguous blocks, and dispatches the shards to a pool of
// worker threads (an LSQ-style work queue: many short heterogeneous jobs,
// one dispatcher, idle workers pull the next shard).
//
// Determinism is independent of the thread count by construction:
//   * every per-user random stream is derived only from (seed, user index,
//     day, session) — never from thread identity or execution order;
//   * sharding is a pure function of the user count, not of the pool size;
//   * per-shard results go into FleetAccumulator, whose state is integer
//     (fixed-point) so that merging is exactly associative and commutative.
// Hence the merged result is bitwise identical at 1, 4 or 64 threads, which
// is what makes the parallel fleet usable for paired A/B comparisons.
//
// Within a shard, two execution schedules exist (FleetConfig::scheduler):
//   * kPerUser — users run one after another, whole simulation each; LingXi
//     predictor batches are scoped to one optimization (the PR 3 shape);
//   * kCohortWaves — every user of the shard advances as a pausable task
//     (ShardScheduler below): live sessions run inline, and whenever a
//     user's Monte Carlo optimization stalls on exit-predictor queries the
//     task parks and the next user runs. Between waves one pooled flush
//     (predictor::ExitQueryPool) evaluates every parked query across ALL
//     the shard's users — rollouts of different users and candidates — as
//     per-net sub-batches, so batch occupancy is bounded by the shard's
//     concurrent optimizations instead of a single user's rollouts.
// Both schedules produce bitwise-identical FleetAccumulator checksums and
// telemetry archive bytes: per-user state (rng streams, OBO, engagement) is
// task-private, predictor forwards are bitwise independent of batch
// composition, the accumulator is integer, and telemetry buffers per user.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "abr/abr.h"
#include "common/rng.h"
#include "core/lingxi.h"
#include "predictor/hybrid.h"
#include "scenario/scenario.h"
#include "sim/session.h"
#include "trace/population.h"
#include "trace/video.h"
#include "user/user_model.h"
#include "user/user_population.h"

namespace lingxi::telemetry {
class TelemetrySink;
}

namespace lingxi::predictor {
class ExitQueryPool;
}

namespace lingxi::sim {

class OptimizerPool;

/// Immutable config-derived simulation context shared (read-only) by all
/// fleet workers.
struct FleetWorld {
  trace::PopulationModel networks;
  trace::VideoGenerator videos;
  SessionSimulator simulator;
  user::UserPopulation population;
};

/// Mergeable aggregate over simulated sessions.
///
/// All state is integral: times are stored in microsecond ticks and the
/// bitrate-time product in kbps-milliseconds, quantized once per session at
/// add_session() time. Integer addition is exactly associative and
/// commutative, so any shard partitioning and any merge tree produce the
/// same bits — the property the fleet tests assert and the scaling bench
/// checksums. (Bounds: ~5e10 session-seconds of watch time before the
/// bitrate-time product can overflow 63 bits at ladder-top bitrates; past
/// that bound the fixed-point sums saturate at INT64_MAX and `overflowed`
/// latches — see below — instead of silently wrapping.)
struct FleetAccumulator {
  static constexpr double kTicksPerSecond = 1e6;       ///< time resolution
  static constexpr double kBitrateTicksPerKbpsSec = 1e3;

  // Session tallies.
  std::uint64_t sessions = 0;
  std::uint64_t completed = 0;           ///< sessions the user watched to the end
  std::uint64_t measured_sessions = 0;   ///< sessions past the warmup window
  std::uint64_t measured_completed = 0;
  std::uint64_t stall_events = 0;
  std::uint64_t stall_exits = 0;         ///< stall-driven exits (§5.5.1)
  std::uint64_t quality_switches = 0;
  std::uint64_t users = 0;

  // Fixed-point sums.
  std::int64_t watch_ticks = 0;          ///< microseconds of media watched
  std::int64_t stall_ticks = 0;          ///< microseconds stalled
  std::int64_t startup_ticks = 0;        ///< microseconds of startup delay
  std::int64_t bitrate_time_ticks = 0;   ///< kbps-milliseconds (rate x watch)

  // LingXi counters summed over users (zero for control fleets).
  std::uint64_t lingxi_triggers = 0;
  std::uint64_t lingxi_optimizations = 0;
  std::uint64_t lingxi_pruned_preplay = 0;
  std::uint64_t lingxi_mc_evaluations = 0;
  std::uint64_t lingxi_mc_rollouts_pruned = 0;
  std::uint64_t adjusted_user_days = 0;  ///< user-days ending off the default params

  /// Sticky overflow latch (0/1): set whenever a fixed-point sum saturates at
  /// INT64_MAX in add_session() or merge(). Saturating addition of
  /// non-negative addends is min(true_total, INT64_MAX) — associative and
  /// commutative — so both the clamped sums and this flag are independent of
  /// the shard partitioning and merge order, keeping the bitwise-parity
  /// contract even past the overflow bound. Release builds detect overflow
  /// through this latch (callers treat has_overflow() as a run error); it is
  /// part of the checksum and of the snapshot serialization.
  std::uint64_t overflowed = 0;

  void add_session(const SessionResult& session, bool measured);
  void add_lingxi_stats(const core::LingXiStats& stats);
  void merge(const FleetAccumulator& other);

  // Derived metrics (same definitions as analytics::MetricAccumulator).
  double total_watch_time() const noexcept;
  double total_stall_time() const noexcept;
  double total_startup_delay() const noexcept;
  /// Watch-time-weighted mean bitrate (kbps).
  double mean_bitrate() const noexcept;
  double completion_rate() const noexcept;
  double measured_completion_rate() const noexcept;
  /// Sessions the user abandoned / all sessions.
  double exit_rate() const noexcept;
  /// Stall-driven exits per stall event.
  double stall_exit_rate() const noexcept;
  /// Stall seconds per 10000 watch seconds (the unit of Fig. 3(b)).
  double stall_per_10k() const noexcept;

  /// True when any fixed-point sum saturated: the derived time/bitrate
  /// metrics are lower bounds, not exact, and callers should fail the run.
  bool has_overflow() const noexcept { return overflowed != 0; }

  /// CRC32 over the raw integer state in field order — a cheap bitwise
  /// identity probe for "same result regardless of thread count".
  std::uint32_t checksum() const;
};

/// How a worker executes the users of one shard. Purely a scheduling knob:
/// both modes produce bitwise-identical results (checksums AND telemetry
/// bytes) — the property test grid asserts it.
enum class SchedulerMode {
  /// One user at a time, whole simulation each; predictor batches are
  /// scoped to a single optimization (the per-optimization baseline).
  kPerUser,
  /// Cross-user wave scheduler: all users of the shard advance as pausable
  /// tasks and stalled exit-predictor queries pool into one fleet-wide
  /// flush per wave (see ShardScheduler).
  kCohortWaves,
};

/// Batching telemetry for one FleetRunner::run — deliberately OUTSIDE
/// FleetAccumulator: occupancy depends on the schedule, and the accumulator
/// checksum must not.
struct FleetRunStats {
  std::uint64_t pool_flushes = 0;      ///< pooled flushes with >= 1 query
  std::uint64_t pool_queries = 0;      ///< stalled queries batch-evaluated
  std::uint64_t pool_net_batches = 0;  ///< per-net predict_batch calls
  std::uint64_t pool_max_flush = 0;    ///< largest single flush
  void merge(const FleetRunStats& other) noexcept;
  /// Mean stalled queries evaluated per pooled flush (batch occupancy).
  double mean_flush_occupancy() const noexcept;
  /// Mean rows per net forward (after per-net sub-batching).
  double mean_net_batch() const noexcept;
};

/// Evolving per-user state at a day boundary — everything a resumed run
/// needs beyond the (config, seed)-derived world to continue a user bitwise
/// identically. The static per-user context (user model, network profile,
/// predictor nets) is deliberately NOT here: it derives from (seed, user)
/// streams and the pure factories, so a resumed run reconstructs it equal.
struct UserFleetState {
  /// Last session's rng position. Re-derived at the next session start, so
  /// it only matters to mid-session resumption; kept for a faithful
  /// checkpoint of the task.
  Rng::State session_rng;
  /// ABR parameters at the day boundary (LingXi's adopted params, or the
  /// pinned fixed/default params).
  abr::QoeParams params;
  std::uint64_t adjusted_days = 0;  ///< user-days ended off the defaults so far
  bool has_lingxi = false;
  core::LingXi::PersistentState lingxi;  ///< valid when has_lingxi
};

/// Fleet state at a day boundary: the per-user evolving states plus the
/// accumulator over every session already simulated (days [0, next_day)).
/// Produced by FleetRunner::run_days(out_state) and consumed by a later
/// run_days(resume); the snapshot subsystem (src/snapshot/) persists it.
struct FleetDayState {
  std::size_t next_day = 0;  ///< first day a resumed run will simulate
  std::vector<UserFleetState> users;
  FleetAccumulator accumulated;
};

struct FleetConfig {
  std::size_t users = 100;
  std::size_t days = 1;
  std::size_t sessions_per_user_day = 12;
  /// Per-user sessions (counted across days) excluded from measured_*:
  /// LingXi needs history before its first optimization, and steady-state
  /// comparisons exclude cold start.
  std::size_t warmup_sessions = 0;
  /// Worker pool size; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 1;
  /// Shard granularity in users. Purely a scheduling knob: results are
  /// identical for any value (0 is clamped to 1 at construction; values
  /// beyond the fleet size behave as one whole-fleet shard); smaller shards
  /// balance heterogeneous users better, larger shards amortize per-shard
  /// setup and — under kCohortWaves — pool more users per predictor flush.
  std::size_t users_per_shard = 8;
  /// Shard execution schedule; results are identical in both modes.
  SchedulerMode scheduler = SchedulerMode::kCohortWaves;
  /// Treatment switch: run LingXi per user (config `lingxi`) vs pinning
  /// `fixed_params` on the ABR.
  bool enable_lingxi = false;
  /// First day (0-based) on which LingXi may optimize. Before it the ABR is
  /// pinned to `lingxi.default_params` while engagement history still
  /// accrues — the AA period of the Fig. 12 difference-in-differences
  /// protocol. 0 (default) activates LingXi immediately; >= days gives a
  /// pure AA run.
  std::size_t intervention_day = 0;
  /// Day-to-day tolerance drift for data-driven users (§2.3).
  bool drift_user_tolerance = false;
  /// Batched-inference knob: lockstep batch size for LingXi's Monte Carlo
  /// rollouts — per optimization, up to this many candidate sessions advance
  /// together and their predictor forwards run as one batch. 0 keeps
  /// `lingxi.monte_carlo.batch_size` as configured; any value yields a
  /// bitwise-identical fleet checksum (the scalar/batched parity contract,
  /// asserted by tests/test_properties.cpp).
  std::size_t predictor_batch = 0;
  /// Extra worker threads (per shard worker) for the round-boundary
  /// optimizer fits — GP observe plus the next acquisition sweep — that
  /// kCohortWaves parks at wave boundaries and runs as one pooled batch.
  /// 0 runs the fits inline on the shard's own thread. Purely a scheduling
  /// knob: each fit touches only its user's private state, so any value
  /// yields bitwise-identical results (asserted by test_properties.cpp).
  /// Ignored under kPerUser, whose fits were never parked.
  std::size_t optimizer_threads = 0;
  /// Lognormal sigma jittering each session's mean bandwidth around the
  /// user's profile (cellular commute vs home Wi-Fi); 0 disables.
  double session_jitter_sigma = 0.0;
  abr::QoeParams fixed_params;
  user::UserPopulation::Config population;
  trace::PopulationModel::Config network;
  trace::VideoGenerator::Config video;
  core::LingXiConfig lingxi;
  SessionSimulator::Config session;
  /// Scripted world events (src/scenario/): bandwidth shocks, diurnal
  /// session curves, flash-crowd arrivals, churn and cohort overrides, all
  /// pure functions of (user, day). An empty script (the default) is
  /// byte-for-byte the unscripted run; a non-empty script still satisfies
  /// the full bitwise contract across scheduler / threads / shard size /
  /// batch AND across checkpoint splices, and it is part of the telemetry
  /// config digest so archives and snapshots pin the script they ran.
  scenario::ScenarioScript scenario;
};

class FleetRunner {
 public:
  using AbrFactory = std::function<std::unique_ptr<abr::AbrAlgorithm>()>;
  /// Builds the user model for one user. Invoked once per user with an Rng
  /// derived from (seed, user index); must be callable concurrently.
  using UserFactory =
      std::function<std::unique_ptr<user::UserModel>(std::size_t user_index, Rng& rng)>;
  using PredictorFactory = std::function<predictor::HybridExitPredictor()>;
  /// Observes the whole-fleet day-boundary state at periodic boundaries of a
  /// run (see set_checkpoint_hook). Invoked between legs on the calling
  /// thread — never from workers — so the hook may do I/O (snapshot saves)
  /// while the fleet is quiescent. Hook failures are the hook owner's to
  /// record (snapshot::AutoCheckpointer keeps a Status); the simulation
  /// itself continues, serving-style: a failed checkpoint costs durability,
  /// not the run.
  using CheckpointHook = std::function<void(const FleetDayState&)>;

  /// Default user factory: sample from `config.population`, or from the
  /// first matching `config.scenario` cohort override for slots a
  /// CohortOverride names.
  FleetRunner(FleetConfig config, AbrFactory abr_factory);

  /// Override user sampling (e.g. the Fig. 10 rule-based 8x8 grid). A
  /// custom factory bypasses scenario cohort overrides by design; with
  /// churn it is re-invoked per generation with a fresh generation-derived
  /// rng (an index-only factory therefore rebuilds identical users).
  void set_user_factory(UserFactory factory);
  /// Required when `config.enable_lingxi`. Invoked from worker threads —
  /// once per user (kPerUser) or once per shard (kCohortWaves); the returned
  /// predictor's net is deep-copied before use, so a factory handing out a
  /// shared net is safe. Under kCohortWaves the shard's users share the
  /// deep copy: batched forwards are const and pure per row, and one shard
  /// is driven by one worker, so sharing changes no result bit while
  /// letting one flush serve the whole shard as a single net sub-batch.
  /// Because the invocation count depends on the schedule, the factory must
  /// be pure configuration: every call must return an equivalent predictor
  /// (same weights, same OS model, same blend config). A factory whose
  /// output varies call to call (e.g. an rng advanced across calls) would
  /// silently void the "results identical for any scheduler / shard size"
  /// contract.
  void set_predictor_factory(PredictorFactory factory);

  /// Optional capture plane (telemetry/sink.h): the sink observes every
  /// completed session plus a per-user summary, from worker threads. Not
  /// owned; must outlive run(). Pass nullptr to detach.
  void set_telemetry_sink(telemetry::TelemetrySink* sink) { sink_ = sink; }

  /// Auto-checkpoint policy: with a hook installed and every_k_days > 0,
  /// run_days() executes as a chain of <= every_k_days-day legs and invokes
  /// the hook with the materialized FleetDayState at every interior boundary
  /// (first_day + k, first_day + 2k, ... < last_day). Chunking is bitwise
  /// invisible — a chained run equals an unchunked one (the run_days resume
  /// contract) — so arming checkpoints never changes results. Pass a null
  /// hook (or every_k_days == 0) to disarm.
  void set_checkpoint_hook(CheckpointHook hook, std::size_t every_k_days);

  /// Simulate the whole fleet. Bitwise-deterministic for a given seed,
  /// independent of `config().threads` (and of `config().scheduler`).
  /// `stats`, when non-null, receives the merged batching telemetry.
  FleetAccumulator run(std::uint64_t seed, FleetRunStats* stats = nullptr) const;

  /// Simulate days [first_day, last_day) only — the warm-start /
  /// incremental-day form of run() (run(seed) == run_days(seed, 0, days)).
  ///
  ///   * `resume`, when non-null, must be the FleetDayState a previous
  ///     run_days(seed, ..., first_day) exported (next_day == first_day, one
  ///     entry per user); per-user evolving state is restored from it and
  ///     its accumulator is merged into the result. Null requires
  ///     first_day == 0.
  ///   * `out_state`, when non-null, receives the day-boundary state at
  ///     last_day (including the merged accumulator so far) for a later
  ///     resume or a disk snapshot.
  ///
  /// Contract (pinned by tests/test_properties.cpp across the scheduler x
  /// threads x users_per_shard x predictor_batch grid): splitting a run at
  /// any day boundary and resuming — in-process or through a disk snapshot —
  /// yields a bitwise-identical FleetAccumulator AND, with a restored
  /// ShardedCapture attached, bitwise-identical telemetry archive bytes.
  /// Per-user summaries (finish-time accumulator fields and record_user
  /// telemetry) are emitted only by the leg that reaches config().days —
  /// except scripted churn departures, whose summaries are emitted by the
  /// leg that simulates the churn day (so they splice identically too).
  ///
  /// The telemetry sink's begin_fleet() fires only when first_day == 0; a
  /// resumed leg expects the sink to carry the capture state of the prior
  /// legs (in-process reuse, or snapshot::restore_capture after loading).
  FleetAccumulator run_days(std::uint64_t seed, std::size_t first_day,
                            std::size_t last_day, const FleetDayState* resume = nullptr,
                            FleetDayState* out_state = nullptr,
                            FleetRunStats* stats = nullptr) const;

  const FleetConfig& config() const noexcept { return config_; }
  /// The configured predictor factory (null unless set). The snapshot
  /// subsystem serializes the factory net's weights from here.
  const PredictorFactory& predictor_factory() const noexcept { return predictor_factory_; }

 private:
  friend class ShardScheduler;

  /// One contiguous leg (the pre-hook run_days body); run_days() chains legs
  /// through it when the checkpoint hook is armed. `worker_predictors`, when
  /// non-null, supplies one pre-cloned private-net predictor per worker slot
  /// (size >= the worker pool) so chained legs reuse the clones instead of
  /// re-deriving them per leg; null keeps the per-leg clone (single-leg runs).
  /// `day_totals`, when non-null, receives (last_day - first_day) fleet-wide
  /// per-day accumulators (merged across shards in fixed shard order): slot i
  /// holds exactly the tallies attributed to day first_day + i, so
  /// base + slots[0..i] reproduces the day-boundary aggregate a chain of
  /// 1-day legs would have exported — bitwise, because the accumulator is
  /// all integer saturating sums (associative and commutative).
  FleetAccumulator run_days_leg(
      std::uint64_t seed, std::size_t first_day, std::size_t last_day,
      const FleetDayState* resume, FleetDayState* out_state, FleetRunStats* stats,
      std::vector<predictor::HybridExitPredictor>* worker_predictors = nullptr,
      std::vector<FleetAccumulator>* day_totals = nullptr) const;

  /// Size of the leg worker pool for the current config (threads capped by
  /// shard count); shared by run_days_leg and the run_days clone hoist.
  std::size_t worker_pool_size() const noexcept;

  FleetConfig config_;
  AbrFactory abr_factory_;
  UserFactory user_factory_;
  PredictorFactory predictor_factory_;
  telemetry::TelemetrySink* sink_ = nullptr;
  CheckpointHook checkpoint_hook_;
  std::size_t checkpoint_every_k_days_ = 0;
};

/// Executes the users of one shard under the configured SchedulerMode. Both
/// schedules drive the same pausable per-user task (UserTask — there is ONE
/// implementation of per-user simulation, so schedule parity is structural,
/// not maintained by hand):
///
///   * kPerUser: one task at a time, driven to completion; the predictor is
///     deep-copied per user and flushes stay scoped to one optimization
///     (with batch <= 1 the pool is withheld entirely, keeping the
///     sequential rollout fast path);
///   * kCohortWaves: every task advances in waves — live sessions simulate
///     inline, LingXi optimizations run until each Monte Carlo rollout
///     parks a stalled exit query in the shared ExitQueryPool, then the
///     next user runs; one pooled flush per wave serves every parked query
///     across users, candidates and rollouts, sub-batched per net.
///
/// Tasks step in ascending user order, so park order — and therefore every
/// batch composition — is a pure function of (config, seed, shard range):
/// replays are deterministic. Per-user outcomes cannot depend on the
/// interleaving at all (task state is private; forwards are pure), which is
/// what keeps cohort results bitwise equal to the per-user schedule.
/// One ShardScheduler is driven by exactly one worker thread.
class ShardScheduler {
 public:
  /// Drives users [first_user, last_user) over days [first_day, last_day).
  /// `resume` / `out_state`, when non-null, are the whole-fleet day-boundary
  /// states (indexed by absolute user index) this shard restores from /
  /// exports into; the scheduler touches only its own users' entries.
  /// `fit_pool`, when non-null, runs the cohort waves' parked optimizer
  /// fits (shared across the worker's shards; may be a zero-worker pool).
  /// `worker_predictor`, when non-null, is the driving worker's private-net
  /// predictor clone, shared by every shard (and user) the worker processes
  /// instead of re-cloning the net per shard/user — forwards are pure
  /// functions of (weights, input) and weights never change during a run,
  /// so the sharing is bitwise invisible (the net's fc1 weight matrix makes
  /// each clone ~ms-scale).
  /// `day_totals`, when non-null, points at (last_day - first_day)
  /// per-day accumulators for this shard: every tally banked into `acc` is
  /// also banked into the slot of the day it belongs to, so the health
  /// timeline can reconstruct each interior day-boundary aggregate from a
  /// single leg without forcing 1-day leg chaining.
  ShardScheduler(const FleetRunner& runner, const FleetWorld& world, std::uint64_t seed,
                 std::size_t first_user, std::size_t last_user, FleetAccumulator& acc,
                 std::size_t first_day, std::size_t last_day,
                 const FleetDayState* resume, FleetDayState* out_state,
                 OptimizerPool* fit_pool = nullptr,
                 const predictor::HybridExitPredictor* worker_predictor = nullptr,
                 FleetAccumulator* day_totals = nullptr);
  ~ShardScheduler();
  ShardScheduler(const ShardScheduler&) = delete;
  ShardScheduler& operator=(const ShardScheduler&) = delete;

  /// Drive every user of the shard to completion under the configured mode.
  void run();
  /// Pool batching telemetry accumulated so far.
  FleetRunStats stats() const;

 private:
  class UserTask;

  void run_per_user();
  void run_cohort();

  const FleetRunner& runner_;
  const FleetWorld& world_;
  std::uint64_t seed_;
  std::size_t first_user_;
  std::size_t last_user_;
  FleetAccumulator& acc_;
  std::size_t first_day_;
  std::size_t last_day_;
  const FleetDayState* resume_;
  FleetDayState* out_state_;
  std::unique_ptr<predictor::ExitQueryPool> pool_;
  OptimizerPool* fit_pool_;  ///< not owned; may be null (fits run inline)
  /// Worker-owned private-net predictor; null falls back to per-shard /
  /// per-user clones.
  const predictor::HybridExitPredictor* worker_predictor_;
  /// Per-day accumulator slots for this shard (leg-relative, size
  /// last_day_ - first_day_); null when no per-day observation is wanted.
  FleetAccumulator* day_totals_;
};

}  // namespace lingxi::sim
