#include "sim/fleet_runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "common/crc32.h"
#include "telemetry/sink.h"
#include "user/data_driven.h"

namespace lingxi::sim {
namespace {

// Purpose tags for mix_seed's third argument: the high bits name the stream
// kind so a drift stream can never alias a session stream for any
// (day, session) combination. The low 48 bits carry (day << 16) | session
// for sessions, or the day for drift.
constexpr std::uint64_t kPopulationStream = 0ULL << 48;
constexpr std::uint64_t kDriftStream = 1ULL << 48;
constexpr std::uint64_t kSessionStream = 2ULL << 48;

std::int64_t to_ticks(double value, double scale) {
  return static_cast<std::int64_t>(std::llround(value * scale));
}

}  // namespace

void FleetAccumulator::add_session(const SessionResult& session, bool measured) {
  ++sessions;
  if (session.completed()) ++completed;
  if (measured) {
    ++measured_sessions;
    if (session.completed()) ++measured_completed;
  }
  stall_events += session.stall_events;
  if (exited_during_stall(session)) ++stall_exits;
  quality_switches += session.quality_switches;

  watch_ticks += to_ticks(session.watch_time, kTicksPerSecond);
  stall_ticks += to_ticks(session.total_stall, kTicksPerSecond);
  startup_ticks += to_ticks(session.startup_delay, kTicksPerSecond);
  const std::int64_t bitrate_time =
      to_ticks(session.mean_bitrate * session.watch_time, kBitrateTicksPerKbpsSec);
  // Guard the documented ~5e10 session-second bound on the kbps-ms product:
  // past it the fixed-point sum would wrap and silently corrupt mean_bitrate.
  LINGXI_DASSERT(bitrate_time >= 0);
  LINGXI_DASSERT(bitrate_time_ticks <=
                 std::numeric_limits<std::int64_t>::max() - bitrate_time);
  bitrate_time_ticks += bitrate_time;
}

void FleetAccumulator::add_lingxi_stats(const core::LingXiStats& stats) {
  lingxi_triggers += stats.triggers;
  lingxi_optimizations += stats.optimizations_run;
  lingxi_pruned_preplay += stats.pruned_preplay;
  lingxi_mc_evaluations += stats.mc_evaluations;
  lingxi_mc_rollouts_pruned += stats.mc_rollouts_pruned;
}

void FleetAccumulator::merge(const FleetAccumulator& other) {
  sessions += other.sessions;
  completed += other.completed;
  measured_sessions += other.measured_sessions;
  measured_completed += other.measured_completed;
  stall_events += other.stall_events;
  stall_exits += other.stall_exits;
  quality_switches += other.quality_switches;
  users += other.users;
  watch_ticks += other.watch_ticks;
  stall_ticks += other.stall_ticks;
  startup_ticks += other.startup_ticks;
  bitrate_time_ticks += other.bitrate_time_ticks;
  lingxi_triggers += other.lingxi_triggers;
  lingxi_optimizations += other.lingxi_optimizations;
  lingxi_pruned_preplay += other.lingxi_pruned_preplay;
  lingxi_mc_evaluations += other.lingxi_mc_evaluations;
  lingxi_mc_rollouts_pruned += other.lingxi_mc_rollouts_pruned;
  adjusted_user_days += other.adjusted_user_days;
}

double FleetAccumulator::total_watch_time() const noexcept {
  return static_cast<double>(watch_ticks) / kTicksPerSecond;
}

double FleetAccumulator::total_stall_time() const noexcept {
  return static_cast<double>(stall_ticks) / kTicksPerSecond;
}

double FleetAccumulator::total_startup_delay() const noexcept {
  return static_cast<double>(startup_ticks) / kTicksPerSecond;
}

double FleetAccumulator::mean_bitrate() const noexcept {
  if (watch_ticks == 0) return 0.0;
  const double kbps_seconds =
      static_cast<double>(bitrate_time_ticks) / kBitrateTicksPerKbpsSec;
  return kbps_seconds / total_watch_time();
}

double FleetAccumulator::completion_rate() const noexcept {
  return sessions == 0 ? 0.0
                       : static_cast<double>(completed) / static_cast<double>(sessions);
}

double FleetAccumulator::measured_completion_rate() const noexcept {
  return measured_sessions == 0 ? 0.0
                                : static_cast<double>(measured_completed) /
                                      static_cast<double>(measured_sessions);
}

double FleetAccumulator::exit_rate() const noexcept {
  return sessions == 0 ? 0.0
                       : static_cast<double>(sessions - completed) /
                             static_cast<double>(sessions);
}

double FleetAccumulator::stall_exit_rate() const noexcept {
  return stall_events == 0
             ? 0.0
             : static_cast<double>(stall_exits) / static_cast<double>(stall_events);
}

double FleetAccumulator::stall_per_10k() const noexcept {
  return watch_ticks == 0
             ? 0.0
             : 1e4 * static_cast<double>(stall_ticks) / static_cast<double>(watch_ticks);
}

std::uint32_t FleetAccumulator::checksum() const {
  // Serialize the integer state in declaration order. Field values, not the
  // struct bytes, so padding can never leak in.
  const std::uint64_t fields[] = {
      sessions,
      completed,
      measured_sessions,
      measured_completed,
      stall_events,
      stall_exits,
      quality_switches,
      users,
      static_cast<std::uint64_t>(watch_ticks),
      static_cast<std::uint64_t>(stall_ticks),
      static_cast<std::uint64_t>(startup_ticks),
      static_cast<std::uint64_t>(bitrate_time_ticks),
      lingxi_triggers,
      lingxi_optimizations,
      lingxi_pruned_preplay,
      lingxi_mc_evaluations,
      lingxi_mc_rollouts_pruned,
      adjusted_user_days,
  };
  return crc32(reinterpret_cast<const unsigned char*>(fields), sizeof(fields));
}

FleetRunner::FleetRunner(FleetConfig config, AbrFactory abr_factory)
    : config_(std::move(config)), abr_factory_(std::move(abr_factory)) {
  LINGXI_ASSERT(abr_factory_ != nullptr);
  LINGXI_ASSERT(config_.days > 0 && config_.days < (1ULL << 32));
  LINGXI_ASSERT(config_.sessions_per_user_day > 0);
  // Session index must fit the 16-bit slot of the session stream key.
  LINGXI_ASSERT(config_.sessions_per_user_day < (1ULL << 16));
  LINGXI_ASSERT(config_.users_per_shard > 0);
  if (config_.predictor_batch > 0) {
    config_.lingxi.monte_carlo.batch_size = config_.predictor_batch;
  }
  const user::UserPopulation population(config_.population);
  user_factory_ = [population](std::size_t, Rng& rng) {
    return population.sample(rng);
  };
}

void FleetRunner::set_user_factory(UserFactory factory) {
  LINGXI_ASSERT(factory != nullptr);
  user_factory_ = std::move(factory);
}

void FleetRunner::set_predictor_factory(PredictorFactory factory) {
  predictor_factory_ = std::move(factory);
}

void FleetRunner::simulate_user(std::size_t user_index, std::uint64_t seed,
                                const FleetWorld& world, FleetAccumulator& acc) const {
  Rng pop_rng(mix_seed(seed, user_index, kPopulationStream));
  const std::unique_ptr<user::UserModel> base_user = user_factory_(user_index, pop_rng);
  LINGXI_ASSERT(base_user != nullptr);
  const trace::NetworkProfile profile = world.networks.sample(pop_rng);

  auto abr = abr_factory_();
  const abr::QoeParams start_params =
      config_.enable_lingxi ? config_.lingxi.default_params : config_.fixed_params;
  abr->set_params(start_params);

  std::unique_ptr<core::LingXi> lingxi;
  if (config_.enable_lingxi) {
    LINGXI_ASSERT(predictor_factory_ != nullptr);
    // Deep-copy the net: predict() runs forward passes whose layer caches
    // are not shareable across worker threads.
    lingxi = std::make_unique<core::LingXi>(
        config_.lingxi, predictor_factory_().with_private_net(), config_.video.ladder);
  }

  std::size_t session_index = 0;
  std::uint64_t adjusted_days = 0;
  for (std::size_t day = 0; day < config_.days; ++day) {
    // Day-to-day tolerance drift (§2.3) for data-driven users; rule-based
    // users have no drift notion and replay their base behaviour.
    std::unique_ptr<user::UserModel> day_user;
    if (config_.drift_user_tolerance && day > 0) {
      if (const auto* dd = dynamic_cast<const user::DataDrivenUser*>(base_user.get())) {
        Rng drift_rng(mix_seed(seed, user_index, kDriftStream | day));
        day_user = std::make_unique<user::DataDrivenUser>(
            dd->drifted(world.population.sample_drift(drift_rng)));
      }
    }
    if (!day_user) day_user = base_user->clone();

    // AA period of the A/B protocol: before intervention_day the ABR stays
    // pinned to the defaults while LingXi only accumulates engagement.
    const bool lingxi_active = lingxi && day >= config_.intervention_day;

    for (std::size_t s = 0; s < config_.sessions_per_user_day; ++s, ++session_index) {
      Rng session_rng(mix_seed(
          seed, user_index,
          kSessionStream | (static_cast<std::uint64_t>(day) << 16) | (s + 1)));
      const trace::Video video = world.videos.sample(session_rng);

      trace::NetworkProfile session_profile = profile;
      if (config_.session_jitter_sigma > 0.0) {
        session_profile.mean_bandwidth =
            std::clamp(profile.mean_bandwidth *
                           session_rng.lognormal(0.0, config_.session_jitter_sigma),
                       config_.network.min_bandwidth, config_.network.max_bandwidth);
      }
      auto bandwidth = session_profile.make_session_model();

      if (lingxi) {
        lingxi->begin_session();
        if (!lingxi_active) abr->set_params(config_.lingxi.default_params);
      }
      const SessionResult session =
          world.simulator.run(video, *abr, *bandwidth, day_user.get(), session_rng);
      const bool measured = session_index >= config_.warmup_sessions;
      acc.add_session(session, measured);

      if (lingxi) {
        for (const auto& seg : session.segments) lingxi->on_segment(seg);
        lingxi->end_session(exited_during_stall(session));
        if (lingxi_active) {
          const Seconds buffer_seed =
              session.segments.empty() ? 0.0 : session.segments.back().buffer_after;
          lingxi->maybe_optimize(*abr, buffer_seed, session_rng);
        }
      }

      if (sink_) {
        telemetry::SessionContext ctx;
        ctx.user_index = user_index;
        ctx.day = day;
        ctx.session_in_day = s;
        ctx.measured = measured;
        ctx.video_duration = video.duration();
        ctx.params_after = abr->params();
        ctx.user_tolerance = day_user->tolerable_stall();
        sink_->record_session(ctx, session);
      }
    }

    if (lingxi && abr->params() != config_.lingxi.default_params) {
      ++adjusted_days;
    }
  }

  acc.adjusted_user_days += adjusted_days;
  if (lingxi) acc.add_lingxi_stats(lingxi->stats());
  ++acc.users;

  if (sink_) {
    telemetry::UserTelemetry user;
    user.user_index = user_index;
    user.tolerable_stall = base_user->tolerable_stall();
    user.adjusted_days = adjusted_days;
    if (lingxi) user.stats = lingxi->stats();
    sink_->record_user(user);
  }
}

FleetAccumulator FleetRunner::run(std::uint64_t seed) const {
  FleetAccumulator merged;
  if (sink_) sink_->begin_fleet(config_, seed);
  if (config_.users == 0) return merged;

  // Immutable config-derived context, built once and read concurrently by
  // every worker instead of being reconstructed per user.
  const FleetWorld world{trace::PopulationModel(config_.network),
                         trace::VideoGenerator(config_.video),
                         SessionSimulator(config_.session),
                         user::UserPopulation(config_.population)};

  const std::size_t shard_count =
      (config_.users + config_.users_per_shard - 1) / config_.users_per_shard;
  std::vector<FleetAccumulator> shards(shard_count);

  std::atomic<std::size_t> next_shard{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t shard = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shard_count) return;
      const std::size_t first = shard * config_.users_per_shard;
      const std::size_t last = std::min(first + config_.users_per_shard, config_.users);
      for (std::size_t u = first; u < last; ++u) {
        simulate_user(u, seed, world, shards[shard]);
      }
    }
  };

  std::size_t pool = config_.threads != 0
                         ? config_.threads
                         : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  pool = std::min(pool, shard_count);
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  // Fixed left-to-right merge in shard order. With the integer accumulator
  // any merge tree gives the same bits; the fixed order keeps that true even
  // if a float field is ever added.
  for (const auto& shard : shards) merged.merge(shard);
  return merged;
}

}  // namespace lingxi::sim
