#include "sim/fleet_runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/crc32.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeline.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sim/optimizer_pool.h"
#include "telemetry/sink.h"
#include "user/data_driven.h"

namespace lingxi::sim {
namespace {

// Purpose tags for mix_seed's third argument: the high bits name the stream
// kind so a drift stream can never alias a session stream for any
// (day, session) combination. The low 48 bits carry (day << 16) | session
// for sessions, or the day for drift.
constexpr std::uint64_t kPopulationStream = 0ULL << 48;
constexpr std::uint64_t kDriftStream = 1ULL << 48;
constexpr std::uint64_t kSessionStream = 2ULL << 48;

std::int64_t to_ticks(double value, double scale) {
  return static_cast<std::int64_t>(std::llround(value * scale));
}

/// min(a + b, INT64_MAX) for non-negative addends, latching `overflowed` on
/// clamp. Saturating addition of non-negatives is exactly
/// min(true_total, INT64_MAX), so it stays associative and commutative — the
/// property that keeps clamped sums (and the latch) partition-independent.
std::int64_t saturating_add_ticks(std::int64_t a, std::int64_t b,
                                  std::uint64_t& overflowed) {
  std::int64_t sum = 0;
  if (__builtin_add_overflow(a, b, &sum)) {
    overflowed = 1;
    return std::numeric_limits<std::int64_t>::max();
  }
  return sum;
}

}  // namespace

void FleetAccumulator::add_session(const SessionResult& session, bool measured) {
  ++sessions;
  if (session.completed()) ++completed;
  if (measured) {
    ++measured_sessions;
    if (session.completed()) ++measured_completed;
  }
  stall_events += session.stall_events;
  if (exited_during_stall(session)) ++stall_exits;
  quality_switches += session.quality_switches;

  watch_ticks = saturating_add_ticks(watch_ticks, to_ticks(session.watch_time, kTicksPerSecond),
                                     overflowed);
  stall_ticks = saturating_add_ticks(stall_ticks, to_ticks(session.total_stall, kTicksPerSecond),
                                     overflowed);
  startup_ticks = saturating_add_ticks(
      startup_ticks, to_ticks(session.startup_delay, kTicksPerSecond), overflowed);
  const std::int64_t bitrate_time =
      to_ticks(session.mean_bitrate * session.watch_time, kBitrateTicksPerKbpsSec);
  // The documented ~5e10 session-second bound on the kbps-ms product is
  // enforced in every build type: past it the sums saturate and `overflowed`
  // latches (a detectable run error) instead of wrapping into silently
  // corrupt mean_bitrate.
  LINGXI_DASSERT(bitrate_time >= 0);
  bitrate_time_ticks = saturating_add_ticks(bitrate_time_ticks, bitrate_time, overflowed);
}

void FleetAccumulator::add_lingxi_stats(const core::LingXiStats& stats) {
  lingxi_triggers += stats.triggers;
  lingxi_optimizations += stats.optimizations_run;
  lingxi_pruned_preplay += stats.pruned_preplay;
  lingxi_mc_evaluations += stats.mc_evaluations;
  lingxi_mc_rollouts_pruned += stats.mc_rollouts_pruned;
}

void FleetAccumulator::merge(const FleetAccumulator& other) {
  sessions += other.sessions;
  completed += other.completed;
  measured_sessions += other.measured_sessions;
  measured_completed += other.measured_completed;
  stall_events += other.stall_events;
  stall_exits += other.stall_exits;
  quality_switches += other.quality_switches;
  users += other.users;
  watch_ticks = saturating_add_ticks(watch_ticks, other.watch_ticks, overflowed);
  stall_ticks = saturating_add_ticks(stall_ticks, other.stall_ticks, overflowed);
  startup_ticks = saturating_add_ticks(startup_ticks, other.startup_ticks, overflowed);
  bitrate_time_ticks =
      saturating_add_ticks(bitrate_time_ticks, other.bitrate_time_ticks, overflowed);
  lingxi_triggers += other.lingxi_triggers;
  lingxi_optimizations += other.lingxi_optimizations;
  lingxi_pruned_preplay += other.lingxi_pruned_preplay;
  lingxi_mc_evaluations += other.lingxi_mc_evaluations;
  lingxi_mc_rollouts_pruned += other.lingxi_mc_rollouts_pruned;
  adjusted_user_days += other.adjusted_user_days;
  overflowed |= other.overflowed;
}

double FleetAccumulator::total_watch_time() const noexcept {
  return static_cast<double>(watch_ticks) / kTicksPerSecond;
}

double FleetAccumulator::total_stall_time() const noexcept {
  return static_cast<double>(stall_ticks) / kTicksPerSecond;
}

double FleetAccumulator::total_startup_delay() const noexcept {
  return static_cast<double>(startup_ticks) / kTicksPerSecond;
}

double FleetAccumulator::mean_bitrate() const noexcept {
  if (watch_ticks == 0) return 0.0;
  const double kbps_seconds =
      static_cast<double>(bitrate_time_ticks) / kBitrateTicksPerKbpsSec;
  return kbps_seconds / total_watch_time();
}

double FleetAccumulator::completion_rate() const noexcept {
  return sessions == 0 ? 0.0
                       : static_cast<double>(completed) / static_cast<double>(sessions);
}

double FleetAccumulator::measured_completion_rate() const noexcept {
  return measured_sessions == 0 ? 0.0
                                : static_cast<double>(measured_completed) /
                                      static_cast<double>(measured_sessions);
}

double FleetAccumulator::exit_rate() const noexcept {
  return sessions == 0 ? 0.0
                       : static_cast<double>(sessions - completed) /
                             static_cast<double>(sessions);
}

double FleetAccumulator::stall_exit_rate() const noexcept {
  return stall_events == 0
             ? 0.0
             : static_cast<double>(stall_exits) / static_cast<double>(stall_events);
}

double FleetAccumulator::stall_per_10k() const noexcept {
  return watch_ticks == 0
             ? 0.0
             : 1e4 * static_cast<double>(stall_ticks) / static_cast<double>(watch_ticks);
}

std::uint32_t FleetAccumulator::checksum() const {
  // Serialize the integer state in declaration order. Field values, not the
  // struct bytes, so padding can never leak in.
  const std::uint64_t fields[] = {
      sessions,
      completed,
      measured_sessions,
      measured_completed,
      stall_events,
      stall_exits,
      quality_switches,
      users,
      static_cast<std::uint64_t>(watch_ticks),
      static_cast<std::uint64_t>(stall_ticks),
      static_cast<std::uint64_t>(startup_ticks),
      static_cast<std::uint64_t>(bitrate_time_ticks),
      lingxi_triggers,
      lingxi_optimizations,
      lingxi_pruned_preplay,
      lingxi_mc_evaluations,
      lingxi_mc_rollouts_pruned,
      adjusted_user_days,
      overflowed,
  };
  return crc32(reinterpret_cast<const unsigned char*>(fields), sizeof(fields));
}

void FleetRunStats::merge(const FleetRunStats& other) noexcept {
  pool_flushes += other.pool_flushes;
  pool_queries += other.pool_queries;
  pool_net_batches += other.pool_net_batches;
  pool_max_flush = std::max(pool_max_flush, other.pool_max_flush);
}

double FleetRunStats::mean_flush_occupancy() const noexcept {
  return pool_flushes == 0 ? 0.0
                           : static_cast<double>(pool_queries) /
                                 static_cast<double>(pool_flushes);
}

double FleetRunStats::mean_net_batch() const noexcept {
  return pool_net_batches == 0 ? 0.0
                               : static_cast<double>(pool_queries) /
                                     static_cast<double>(pool_net_batches);
}

FleetRunner::FleetRunner(FleetConfig config, AbrFactory abr_factory)
    : config_(std::move(config)), abr_factory_(std::move(abr_factory)) {
  LINGXI_ASSERT(abr_factory_ != nullptr);
  LINGXI_ASSERT(config_.days > 0 && config_.days < (1ULL << 32));
  LINGXI_ASSERT(config_.sessions_per_user_day > 0);
  // Session index must fit the 16-bit slot of the session stream key.
  LINGXI_ASSERT(config_.sessions_per_user_day < (1ULL << 16));
  // users_per_shard is documented as "results identical for any value";
  // honour that for the 0 edge too by clamping it to the smallest
  // well-defined granularity instead of dividing by zero downstream.
  if (config_.users_per_shard == 0) config_.users_per_shard = 1;
  if (config_.predictor_batch > 0) {
    config_.lingxi.monte_carlo.batch_size = config_.predictor_batch;
  }
  if (!config_.scenario.empty()) {
    const Status valid = config_.scenario.validate(config_.users, config_.days);
    LINGXI_ASSERT(valid.ok());
  }
  // Default factory: the fleet population, or the scenario cohort override
  // for slots a CohortOverride names. Captured by value — the runner may be
  // moved/copied after construction.
  std::vector<std::pair<scenario::Cohort, user::UserPopulation>> overrides;
  overrides.reserve(config_.scenario.cohorts.size());
  for (const auto& cohort : config_.scenario.cohorts) {
    overrides.emplace_back(cohort.cohort, user::UserPopulation(cohort.population));
  }
  const user::UserPopulation population(config_.population);
  user_factory_ = [population, overrides](std::size_t user, Rng& rng) {
    for (const auto& [cohort, pop] : overrides) {
      if (cohort.contains(user)) return pop.sample(rng);
    }
    return population.sample(rng);
  };
}

void FleetRunner::set_user_factory(UserFactory factory) {
  LINGXI_ASSERT(factory != nullptr);
  user_factory_ = std::move(factory);
}

void FleetRunner::set_predictor_factory(PredictorFactory factory) {
  predictor_factory_ = std::move(factory);
}

FleetAccumulator FleetRunner::run(std::uint64_t seed, FleetRunStats* stats) const {
  return run_days(seed, 0, config_.days, nullptr, nullptr, stats);
}

void FleetRunner::set_checkpoint_hook(CheckpointHook hook, std::size_t every_k_days) {
  checkpoint_hook_ = std::move(hook);
  checkpoint_every_k_days_ = every_k_days;
}

namespace {

/// Fleet facts for one day boundary — every field a pure function of
/// (config, seed, day) via the merged accumulator, so the sampler's
/// `sim.fleet.*` gauges (the timeline's deterministic section) splice
/// bitwise across chained legs and resumed runs.
obs::FleetDayFacts day_facts(std::size_t day, std::size_t live_users,
                             const FleetAccumulator& acc) {
  obs::FleetDayFacts facts;
  facts.day = day;
  facts.live_users = live_users;
  facts.sessions_total = acc.sessions;
  facts.completed_total = acc.completed;
  facts.stall_events_total = acc.stall_events;
  facts.stall_exits_total = acc.stall_exits;
  facts.quality_switches_total = acc.quality_switches;
  facts.lingxi_optimizations_total = acc.lingxi_optimizations;
  facts.adjusted_user_days_total = acc.adjusted_user_days;
  facts.watch_seconds_total = acc.total_watch_time();
  facts.stall_seconds_total = acc.total_stall_time();
  facts.mean_bitrate_kbps = acc.mean_bitrate();
  facts.completion_rate = acc.completion_rate();
  return facts;
}

}  // namespace

FleetAccumulator FleetRunner::run_days(std::uint64_t seed, std::size_t first_day,
                                       std::size_t last_day, const FleetDayState* resume,
                                       FleetDayState* out_state,
                                       FleetRunStats* stats) const {
  // Fleet-health sampler, fed at every interior day boundary (the same seam
  // the checkpoint hook rides) and once at run end. A resumed run seeds the
  // rate window with the sessions already banked so sessions/sec reflects
  // only this run's work. No-op unless a Registry is installed.
  obs::PeriodicSampler sampler(
      obs::Registry::active(),
      resume != nullptr ? resume->accumulated.sessions : 0);
  const std::size_t k = checkpoint_every_k_days_;
  const bool hook_armed = checkpoint_hook_ != nullptr && k > 0;
  // The health timeline wants a record per fleet day, but that no longer
  // forces 1-day leg chaining: with a TimelineWriter or HealthMonitor armed
  // (and a Registry to snapshot) each leg collects fleet-wide PER-DAY
  // accumulator totals in-band (see run_days_leg) and the interior day
  // records are emitted post-hoc after the leg, from base + partial sums.
  // That reconstruction is bitwise equal to what a chain of 1-day legs
  // would have exported — the accumulator is associative integer saturating
  // sums, and every user-level tally is attributed to the same day a 1-day
  // leg would have banked it on — while costing none of the per-leg fixed
  // work chaining paid. Legs therefore follow the checkpoint cadence only,
  // and with observability off the single-leg fast path is unchanged.
  //
  // The deterministic section of each interior day record is exact per day;
  // the wall-clock section (RSS, counters, sessions/sec) is sampled when
  // the leg ends, so its resolution is the leg cadence. Interior samples
  // share one timestamp: the first carries the leg-window rate and the rest
  // hit the sampler's zero-window guard instead of fabricating rates.
  const bool per_day_obs =
      obs::Registry::active() != nullptr &&
      (obs::TimelineWriter::active() != nullptr || obs::HealthMonitor::active() != nullptr);
  std::vector<FleetAccumulator> day_totals;
  std::vector<FleetAccumulator>* day_totals_ptr = per_day_obs ? &day_totals : nullptr;
  // Emit the day records of leg [a, b): cumulative day boundaries a+1..b-1
  // reconstructed from `base` (everything accumulated before the leg) plus
  // the leg's per-day totals, then the boundary at b from the leg's exact
  // merged accumulator (bitwise the same sum; using it directly keeps the
  // final record trivially equal to the run result).
  const auto emit_leg_days = [&](std::size_t a, std::size_t b,
                                 const FleetAccumulator& base,
                                 const FleetAccumulator& leg_merged) {
    if (!per_day_obs) {
      sampler.sample(day_facts(b, config_.users, leg_merged));
      return;
    }
    const std::uint64_t now_us = obs::Tracer::now_us();
    FleetAccumulator cum = base;
    for (std::size_t d = a; d + 1 < b; ++d) {
      cum.merge(day_totals[d - a]);
      sampler.sample_at(day_facts(d + 1, config_.users, cum), now_us);
    }
    sampler.sample_at(day_facts(b, config_.users, leg_merged), now_us);
  };

  const std::size_t step = hook_armed ? k : 0;
  if (step == 0 || last_day - first_day <= step) {
    const FleetAccumulator base =
        resume != nullptr ? resume->accumulated : FleetAccumulator{};
    const FleetAccumulator acc = run_days_leg(seed, first_day, last_day, resume,
                                              out_state, stats, nullptr, day_totals_ptr);
    emit_leg_days(first_day, last_day, base, acc);
    return acc;
  }
  // Chain <= step-day legs through the day-boundary state; hand boundaries
  // on the checkpoint cadence (every k days from first_day) to the hook and
  // every leg's days to the sampler.
  if (stats != nullptr) *stats = FleetRunStats{};
  // Clone the per-worker private-net predictors ONCE for the whole chain.
  // Each clone is driven by exactly one worker thread per leg and forwards
  // are pure in (weights, input), so reuse across legs is bitwise invisible
  // — re-cloning per leg was pure per-leg fixed cost.
  std::vector<predictor::HybridExitPredictor> worker_predictors;
  if (config_.enable_lingxi && config_.users > 0) {
    LINGXI_ASSERT(predictor_factory_ != nullptr);
    const std::size_t pool = worker_pool_size();
    worker_predictors.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) {
      worker_predictors.emplace_back(predictor_factory_().with_private_net());
    }
  }
  FleetDayState boundary;
  const FleetDayState* leg_resume = resume;
  std::size_t leg_first = first_day;
  FleetRunStats leg_stats;
  FleetAccumulator leg_base =
      resume != nullptr ? resume->accumulated : FleetAccumulator{};
  for (std::size_t b = first_day + step; b < last_day; b += step) {
    FleetDayState next;
    run_days_leg(seed, leg_first, b, leg_resume, &next,
                 stats != nullptr ? &leg_stats : nullptr,
                 worker_predictors.empty() ? nullptr : &worker_predictors,
                 day_totals_ptr);
    if (stats != nullptr) stats->merge(leg_stats);
    if (hook_armed && (b - first_day) % k == 0) checkpoint_hook_(next);
    emit_leg_days(leg_first, b, leg_base, next.accumulated);
    leg_base = next.accumulated;
    boundary = std::move(next);
    leg_resume = &boundary;
    leg_first = b;
  }
  const FleetAccumulator merged =
      run_days_leg(seed, leg_first, last_day, leg_resume, out_state,
                   stats != nullptr ? &leg_stats : nullptr,
                   worker_predictors.empty() ? nullptr : &worker_predictors,
                   day_totals_ptr);
  if (stats != nullptr) stats->merge(leg_stats);
  emit_leg_days(leg_first, last_day, leg_base, merged);
  return merged;
}

std::size_t FleetRunner::worker_pool_size() const noexcept {
  const std::size_t shard_count =
      (config_.users + config_.users_per_shard - 1) / config_.users_per_shard;
  std::size_t pool = config_.threads != 0
                         ? config_.threads
                         : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(pool, shard_count);
}

FleetAccumulator FleetRunner::run_days_leg(
    std::uint64_t seed, std::size_t first_day, std::size_t last_day,
    const FleetDayState* resume, FleetDayState* out_state, FleetRunStats* stats,
    std::vector<predictor::HybridExitPredictor>* worker_predictors,
    std::vector<FleetAccumulator>* day_totals) const {
  LINGXI_ASSERT(first_day < last_day && last_day <= config_.days);
  // Resuming mid-calendar requires the matching day-boundary state; a fresh
  // start must begin at day 0.
  LINGXI_ASSERT((first_day == 0) == (resume == nullptr));
  if (resume != nullptr) {
    LINGXI_ASSERT(resume->next_day == first_day);
    LINGXI_ASSERT(resume->users.size() == config_.users);
  }

  // Chronological merge base: everything the resumed-from legs accumulated.
  FleetAccumulator merged;
  if (resume != nullptr) merged = resume->accumulated;
  if (stats != nullptr) *stats = FleetRunStats{};
  if (out_state != nullptr) {
    out_state->next_day = last_day;
    out_state->users.assign(config_.users, UserFleetState{});
    out_state->accumulated = FleetAccumulator{};
  }
  const std::size_t leg_days = last_day - first_day;
  if (day_totals != nullptr) day_totals->assign(leg_days, FleetAccumulator{});
  // A resumed leg must not reset the sink: its capture buffers carry the
  // earlier days' records (restored from a snapshot or reused in-process).
  if (sink_ && first_day == 0) sink_->begin_fleet(config_, seed);
  if (config_.users == 0) {
    if (out_state != nullptr) out_state->accumulated = merged;
    return merged;
  }

  // Immutable config-derived context, built once and read concurrently by
  // every worker instead of being reconstructed per user.
  const FleetWorld world{trace::PopulationModel(config_.network),
                         trace::VideoGenerator(config_.video),
                         SessionSimulator(config_.session),
                         user::UserPopulation(config_.population)};

  const std::size_t shard_count =
      (config_.users + config_.users_per_shard - 1) / config_.users_per_shard;
  std::vector<FleetAccumulator> shards(shard_count);
  std::vector<FleetRunStats> shard_stats(shard_count);
  // Per-shard per-day slots (shard-major), merged below in fixed shard order
  // once the workers join. Only allocated when per-day totals are wanted:
  // the obs-off path stays allocation-identical. ~176 B per (shard, day) —
  // auto-checkpoint cadences bound leg_days, so this stays small even for
  // very large fleets.
  std::vector<FleetAccumulator> shard_day_totals;
  if (day_totals != nullptr) {
    shard_day_totals.assign(shard_count * leg_days, FleetAccumulator{});
  }

  std::atomic<std::size_t> next_shard{0};
  const auto worker = [&](std::size_t slot) {
    // One fit pool per worker, shared across its shards, so the fit workers
    // are spawned once per leg rather than once per shard. A zero-worker
    // pool runs the fits inline on this thread.
    OptimizerPool fit_pool(config_.optimizer_threads);
    // One private-net predictor per worker, shared by every shard it
    // processes. Forward passes are pure in (weights, input) and weights
    // never change during a run, so sharing within the single driving
    // thread is bitwise invisible; cloning per shard only protected against
    // cross-THREAD cache races, and the clone is ~ms-scale (the fc1 weight
    // matrix) — a fixed cost every leg would otherwise pay. Checkpoint-chained
    // runs hoist further: run_days pre-clones one predictor per worker slot
    // and every leg reuses them through `worker_predictors`.
    std::optional<predictor::HybridExitPredictor> local_predictor;
    const predictor::HybridExitPredictor* worker_predictor = nullptr;
    if (config_.enable_lingxi) {
      LINGXI_ASSERT(predictor_factory_ != nullptr);
      if (worker_predictors != nullptr) {
        worker_predictor = &(*worker_predictors)[slot];
      } else {
        local_predictor.emplace(predictor_factory_().with_private_net());
        worker_predictor = &*local_predictor;
      }
    }
    for (;;) {
      const std::size_t shard = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shard_count) return;
      const std::size_t first = shard * config_.users_per_shard;
      const std::size_t last = std::min(first + config_.users_per_shard, config_.users);
      ShardScheduler scheduler(
          *this, world, seed, first, last, shards[shard], first_day, last_day,
          resume, out_state, &fit_pool, worker_predictor,
          day_totals != nullptr ? &shard_day_totals[shard * leg_days] : nullptr);
      scheduler.run();
      shard_stats[shard] = scheduler.stats();
    }
  };

  const std::size_t pool = worker_pool_size();
  LINGXI_ASSERT(worker_predictors == nullptr || worker_predictors->size() >= pool);
  if (pool <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker, t);
    for (auto& t : threads) t.join();
  }

  // Fixed left-to-right merge in shard order. With the integer accumulator
  // any merge tree gives the same bits; the fixed order keeps that true even
  // if a float field is ever added.
  for (const auto& shard : shards) merged.merge(shard);
  if (day_totals != nullptr) {
    for (std::size_t d = 0; d < leg_days; ++d) {
      for (std::size_t s = 0; s < shard_count; ++s) {
        (*day_totals)[d].merge(shard_day_totals[s * leg_days + d]);
      }
    }
  }
  if (stats != nullptr) {
    for (const auto& s : shard_stats) stats->merge(s);
  }
  if (out_state != nullptr) out_state->accumulated = merged;
  return merged;
}

// ---------------------------------------------------------------------------
// ShardScheduler: per-user and cross-user wave schedules over one task type.
// ---------------------------------------------------------------------------

/// One user's simulation as a pausable task — THE per-user simulation
/// implementation, driven by both schedules. step() runs the user forward —
/// live sessions inline (they never touch the exit predictor; user-model
/// exits resolve immediately) — and returns false whenever the user's LingXi
/// optimization parks stalled predictor queries in the pool; the next
/// step() resumes it after the pool flush. Without a pool (or when nothing
/// triggers), step() runs the whole user in one call. Every random draw
/// comes from (seed, user, day, session) streams only, so results cannot
/// depend on which schedule drives the task.
class ShardScheduler::UserTask {
 public:
  /// Runs days [first_day, stop_day). `resume`, when non-null, is the
  /// day-boundary state exported at first_day by an earlier task for this
  /// user; the task continues bitwise identically to one that simulated the
  /// earlier days itself (static context re-derives from (seed, user)
  /// streams, evolving state restores from `resume`).
  /// With `park_fits`, optimizations park at round boundaries so the
  /// cohort schedule can pool the fits (see parked_fit()).
  /// `day_totals`, when non-null, is the shard's leg-relative per-day slot
  /// array (see ShardScheduler): every tally banked into `acc` is also
  /// banked into the slot of the day it is attributed to.
  UserTask(const FleetRunner& runner, const FleetWorld& world, std::uint64_t seed,
           std::size_t user_index, FleetAccumulator& acc,
           const predictor::HybridExitPredictor* shard_predictor,
           predictor::ExitQueryPool* pool, std::size_t first_day, std::size_t stop_day,
           const UserFleetState* resume, bool park_fits = false,
           FleetAccumulator* day_totals = nullptr)
      : runner_(runner),
        cfg_(runner.config()),
        world_(world),
        seed_(seed),
        user_(user_index),
        acc_(acc),
        day_totals_(day_totals),
        leg_first_day_(first_day),
        shard_predictor_(shard_predictor),
        pool_(pool),
        scenario_(runner.config().scenario.empty() ? nullptr : &runner.config().scenario),
        day_(first_day),
        stop_day_(stop_day),
        park_fits_(park_fits) {
    if (scenario_ != nullptr) {
      // A churn scheduled exactly at first_day belongs to THIS leg (it rolls
      // over in begin_day), so construction rebuilds the generation that was
      // live strictly before first_day — the one the resume state describes.
      generation_ = scenario_->generations_before(user_, day_);
      session_index_ = scenario_->sessions_before(user_, day_, cfg_.sessions_per_user_day);
      if (const auto* pop = scenario_->population_override(user_)) {
        drift_population_.emplace(*pop);
      }
    } else {
      session_index_ = day_ * cfg_.sessions_per_user_day;
    }
    build_identity();

    if (resume != nullptr) {
      session_rng_.restore(resume->session_rng);
      abr_->set_params(resume->params);
      adjusted_days_ = resume->adjusted_days;
      if (lingxi_) {
        LINGXI_ASSERT(resume->has_lingxi);
        lingxi_->restore_persistent(resume->lingxi);
      }
    }
  }

  /// True when the user is complete; false when parked on the pool.
  bool step() {
    if (opt_ != nullptr) {
      if (!opt_->step()) return false;  // still parked
      opt_.reset();
      finish_session();
    }
    while (day_ < stop_day_) {
      if (session_ == 0) begin_day();
      while (session_ < day_sessions_) {
        run_live_session();
        if (opt_ != nullptr) {
          if (!opt_->step()) return false;
          opt_.reset();
        }
        finish_session();
      }
      end_day();
    }
    // Per-user summaries belong to the leg that completes the calendar; a
    // day-boundary leg exports state instead (export_state).
    if (stop_day_ == cfg_.days) finish_user();
    return true;
  }

  /// Non-null while the task is parked on a round-boundary optimizer fit
  /// (never while parked on predictor queries): the run whose run_fit() the
  /// scheduler must invoke — possibly from a pool worker — before the next
  /// step(). Meaningful only for park_fits tasks.
  core::LingXi::OptimizationRun* parked_fit() const noexcept {
    return opt_ != nullptr && opt_->needs_fit() ? opt_.get() : nullptr;
  }

  /// Day-boundary state for a later resume; call only after step() returned
  /// true on a task whose stop_day precedes the configured horizon.
  void export_state(UserFleetState& out) const {
    out.session_rng = session_rng_.state();
    out.params = abr_->params();
    out.adjusted_days = adjusted_days_;
    out.has_lingxi = lingxi_ != nullptr;
    if (lingxi_) out.lingxi = lingxi_->persistent_state();
  }

 private:
  /// Stream identity of the slot's current occupant: the slot index with
  /// the churn generation folded into the high bits. Generation 0 is the
  /// bare slot index, so unscripted runs keep their exact streams.
  std::uint64_t stream_user() const noexcept {
    return static_cast<std::uint64_t>(user_) |
           (static_cast<std::uint64_t>(generation_) << scenario::kGenerationShift);
  }

  /// (Re)build the (seed, user, generation)-derived static context: user
  /// model, network profile, ABR at start params, and a cold LingXi. Called
  /// at construction and again at every churn rollover.
  void build_identity() {
    Rng pop_rng(mix_seed(seed_, stream_user(), kPopulationStream));
    base_user_ = runner_.user_factory_(user_, pop_rng);
    LINGXI_ASSERT(base_user_ != nullptr);
    profile_ = world_.networks.sample(pop_rng);

    abr_ = runner_.abr_factory_();
    const abr::QoeParams start_params =
        cfg_.enable_lingxi ? cfg_.lingxi.default_params : cfg_.fixed_params;
    abr_->set_params(start_params);

    if (cfg_.enable_lingxi) {
      LINGXI_ASSERT(shard_predictor_ != nullptr);
      // The shard's users BORROW the worker's private net copy (LingXi never
      // mutates it): forwards are pure per row and the shard runs on one
      // worker, so sharing is bitwise invisible — and not copying the net
      // per user keeps identity (re)builds cheap when the checkpoint cadence
      // chains legs or churn rolls a slot over.
      lingxi_ = std::make_unique<core::LingXi>(cfg_.lingxi, *shard_predictor_,
                                               cfg_.video.ladder);
    }
  }

  void begin_day() {
    if (scenario_ != nullptr) {
      // Churn rollover: the departing generation's summary is emitted here
      // — the same tallies finish_user would bank at the horizon — and the
      // replacement arrives with fresh identity streams and a cold LingXi.
      const std::size_t generation = scenario_->generations_through(user_, day_);
      if (generation != generation_) {
        retire_generation();
        generation_ = generation;
        build_identity();
      }
      day_sessions_ = scenario_->sessions_on(user_, day_, cfg_.sessions_per_user_day);
    } else {
      day_sessions_ = cfg_.sessions_per_user_day;
    }
    // Day-to-day tolerance drift (§2.3) for data-driven users; rule-based
    // users have no drift notion and replay their base behaviour. Inactive
    // days (pre-arrival or a zero diurnal multiplier) skip the drift draw —
    // an absent user has no day — which stays split-invariant because each
    // day's drift rng is derived fresh from (seed, user, day).
    day_user_.reset();
    if (day_sessions_ == 0) {
      lingxi_active_ = false;
      return;
    }
    if (cfg_.drift_user_tolerance && day_ > 0) {
      if (const auto* dd = dynamic_cast<const user::DataDrivenUser*>(base_user_.get())) {
        Rng drift_rng(mix_seed(seed_, stream_user(), kDriftStream | day_));
        day_user_ = std::make_unique<user::DataDrivenUser>(
            dd->drifted(drift_population().sample_drift(drift_rng)));
      }
    }
    if (!day_user_) day_user_ = base_user_->clone();
    // AA period of the A/B protocol: before intervention_day the ABR stays
    // pinned to the defaults while LingXi only accumulates engagement.
    lingxi_active_ = lingxi_ != nullptr && day_ >= cfg_.intervention_day;
  }

  /// The population this slot's drift is sampled from: the scenario cohort
  /// override when one names the slot, else the fleet default.
  const user::UserPopulation& drift_population() const noexcept {
    return drift_population_ ? *drift_population_ : world_.population;
  }

  /// Simulate the next live session and feed LingXi; may leave an
  /// OptimizationRun parked in opt_.
  void run_live_session() {
    session_rng_ = Rng(mix_seed(
        seed_, stream_user(),
        kSessionStream | (static_cast<std::uint64_t>(day_) << 16) | (session_ + 1)));
    const trace::Video video = world_.videos.sample(session_rng_);
    video_duration_ = video.duration();

    trace::NetworkProfile session_profile = profile_;
    if (scenario_ != nullptr) {
      // Scripted bandwidth shock: a pure (user, day) rescale of the
      // profiled mean (clamped to the population band) and variability.
      const double bandwidth_scale = scenario_->bandwidth_scale(user_, day_);
      if (bandwidth_scale != 1.0) {
        session_profile.mean_bandwidth =
            std::clamp(profile_.mean_bandwidth * bandwidth_scale,
                       cfg_.network.min_bandwidth, cfg_.network.max_bandwidth);
      }
      const double sd_scale = scenario_->sd_scale(user_, day_);
      if (sd_scale != 1.0) session_profile.relative_sd *= sd_scale;
    }
    if (cfg_.session_jitter_sigma > 0.0) {
      session_profile.mean_bandwidth =
          std::clamp(session_profile.mean_bandwidth *
                         session_rng_.lognormal(0.0, cfg_.session_jitter_sigma),
                     cfg_.network.min_bandwidth, cfg_.network.max_bandwidth);
    }
    const auto bandwidth = session_profile.make_session_model();

    if (lingxi_) {
      lingxi_->begin_session();
      if (!lingxi_active_) abr_->set_params(cfg_.lingxi.default_params);
    }
    {
      OBS_TIMED("sim.session.step_us");
      result_ =
          world_.simulator.run(video, *abr_, *bandwidth, day_user_.get(), session_rng_);
    }
    measured_ = session_index_ >= cfg_.warmup_sessions;
    acc_.add_session(result_, measured_);
    if (day_totals_ != nullptr) {
      day_totals_[day_ - leg_first_day_].add_session(result_, measured_);
    }

    if (lingxi_) {
      for (const auto& seg : result_.segments) lingxi_->on_segment(seg);
      lingxi_->end_session(exited_during_stall(result_));
      if (lingxi_active_) {
        const Seconds buffer_seed =
            result_.segments.empty() ? 0.0 : result_.segments.back().buffer_after;
        opt_ = lingxi_->begin_optimization(*abr_, buffer_seed, session_rng_, pool_,
                                           static_cast<std::uint32_t>(user_));
        if (opt_ != nullptr && park_fits_) opt_->enable_fit_parking();
      }
    }
  }

  /// Post-optimization tail of a session (telemetry sees params_after), then
  /// advance the session cursor.
  void finish_session() {
    if (runner_.sink_) {
      telemetry::SessionContext ctx;
      ctx.user_index = user_;
      ctx.day = day_;
      ctx.session_in_day = session_;
      ctx.measured = measured_;
      ctx.video_duration = video_duration_;
      ctx.params_after = abr_->params();
      ctx.user_tolerance = day_user_->tolerable_stall();
      runner_.sink_->record_session(ctx, result_);
    }
    ++session_;
    ++session_index_;
  }

  void end_day() {
    // Only days the user actually played can count as adjusted: a departed
    // or not-yet-arrived slot has no user-day. (Unscripted runs always have
    // day_sessions_ > 0, so the guard is invisible to them.)
    if (lingxi_ && day_sessions_ > 0 && abr_->params() != cfg_.lingxi.default_params) {
      ++adjusted_days_;
    }
    ++day_;
    session_ = 0;
  }

  /// Bank the current occupant's summary: accumulator tallies plus the
  /// telemetry user record. Emitted at the horizon (finish_user) and at
  /// every churn departure (retire_generation). `slot_day` attributes the
  /// tallies to one calendar day for per-day observation; the attribution
  /// (rollover day for churn, final day for the horizon) reproduces exactly
  /// which 1-day-leg boundary accumulators would have contained them, so
  /// post-hoc per-day reconstruction stays bitwise equal to leg chaining.
  void emit_user_summary(std::size_t slot_day) {
    acc_.adjusted_user_days += adjusted_days_;
    if (lingxi_) acc_.add_lingxi_stats(lingxi_->stats());
    ++acc_.users;
    if (day_totals_ != nullptr) {
      FleetAccumulator& slot = day_totals_[slot_day - leg_first_day_];
      slot.adjusted_user_days += adjusted_days_;
      if (lingxi_) slot.add_lingxi_stats(lingxi_->stats());
      ++slot.users;
    }
    if (runner_.sink_) {
      telemetry::UserTelemetry user;
      user.user_index = user_;
      user.tolerable_stall = base_user_->tolerable_stall();
      user.adjusted_days = adjusted_days_;
      if (lingxi_) user.stats = lingxi_->stats();
      runner_.sink_->record_user(user);
    }
  }

  void finish_user() { emit_user_summary(stop_day_ - 1); }

  /// Churn departure: the occupant leaves the fleet mid-run, so its summary
  /// is banked now and the per-user tallies reset for the replacement.
  void retire_generation() {
    emit_user_summary(day_);
    adjusted_days_ = 0;
  }

  const FleetRunner& runner_;
  const FleetConfig& cfg_;
  const FleetWorld& world_;
  std::uint64_t seed_;
  std::size_t user_;
  FleetAccumulator& acc_;
  /// Shard's per-day accumulator slots (leg-relative), mirroring every bank
  /// into acc_; null when per-day observation is off.
  FleetAccumulator* day_totals_;
  std::size_t leg_first_day_;
  const predictor::HybridExitPredictor* shard_predictor_;  ///< kept for churn rebuilds
  predictor::ExitQueryPool* pool_;

  // Scenario context: null for an empty script, which keeps every
  // scenario branch off the unscripted path. generation_ counts the slot's
  // churn rollovers; drift_population_ is the cohort-override population.
  const scenario::ScenarioScript* scenario_;
  std::size_t generation_ = 0;
  std::optional<user::UserPopulation> drift_population_;

  // Per-user persistent state.
  std::unique_ptr<user::UserModel> base_user_;
  trace::NetworkProfile profile_;
  std::unique_ptr<abr::AbrAlgorithm> abr_;
  std::unique_ptr<core::LingXi> lingxi_;

  // Cursor over (day, session); session_index_ counts across days; the task
  // stops at stop_day_ (== cfg_.days unless this leg ends at a snapshot).
  // day_sessions_ is the current day's scripted session count (== the
  // configured base without a scenario).
  std::size_t day_ = 0;
  std::size_t session_ = 0;
  std::size_t session_index_ = 0;
  std::size_t stop_day_ = 0;
  std::size_t day_sessions_ = 0;
  std::uint64_t adjusted_days_ = 0;
  std::unique_ptr<user::UserModel> day_user_;
  bool lingxi_active_ = false;

  // Per-session state that must survive a park (the session rng feeds the
  // in-flight optimization; the result feeds the telemetry tail).
  Rng session_rng_{0};
  double video_duration_ = 0.0;
  SessionResult result_;
  bool measured_ = false;
  bool park_fits_ = false;
  std::unique_ptr<core::LingXi::OptimizationRun> opt_;
};

ShardScheduler::ShardScheduler(const FleetRunner& runner, const FleetWorld& world,
                               std::uint64_t seed, std::size_t first_user,
                               std::size_t last_user, FleetAccumulator& acc,
                               std::size_t first_day, std::size_t last_day,
                               const FleetDayState* resume, FleetDayState* out_state,
                               OptimizerPool* fit_pool,
                               const predictor::HybridExitPredictor* worker_predictor,
                               FleetAccumulator* day_totals)
    : runner_(runner),
      world_(world),
      seed_(seed),
      first_user_(first_user),
      last_user_(last_user),
      acc_(acc),
      first_day_(first_day),
      last_day_(last_day),
      resume_(resume),
      out_state_(out_state),
      pool_(std::make_unique<predictor::ExitQueryPool>()),
      fit_pool_(fit_pool),
      worker_predictor_(worker_predictor),
      day_totals_(day_totals) {
  LINGXI_ASSERT(first_user_ <= last_user_);
  LINGXI_ASSERT(first_day_ < last_day_);
}

ShardScheduler::~ShardScheduler() = default;

void ShardScheduler::run() {
  if (runner_.config().scheduler == SchedulerMode::kCohortWaves) {
    run_cohort();
  } else {
    run_per_user();
  }
}

void ShardScheduler::run_per_user() {
  const FleetConfig& cfg = runner_.config();
  // Batches stay scoped to one optimization: a single task is in flight, so
  // every pooled flush holds exactly one wave of one user's rollouts. With
  // batch <= 1 the pool is withheld entirely so optimizations keep the
  // sequential rollout fast path (nothing to batch anyway).
  predictor::ExitQueryPool* pool =
      cfg.lingxi.monte_carlo.batch_size > 1 ? pool_.get() : nullptr;
  // The worker's private-net predictor serves every user (forwards are pure
  // and this thread is the only one touching the net's layer caches); the
  // clone-per-user fallback covers direct ShardScheduler construction.
  std::optional<predictor::HybridExitPredictor> fallback_predictor;
  if (cfg.enable_lingxi && worker_predictor_ == nullptr) {
    LINGXI_ASSERT(runner_.predictor_factory_ != nullptr);
    fallback_predictor.emplace(runner_.predictor_factory_().with_private_net());
  }
  const predictor::HybridExitPredictor* predictor =
      worker_predictor_ != nullptr ? worker_predictor_
                                   : (fallback_predictor ? &*fallback_predictor : nullptr);
  for (std::size_t u = first_user_; u < last_user_; ++u) {
    UserTask task(runner_, world_, seed_, u, acc_, cfg.enable_lingxi ? predictor : nullptr,
                  pool, first_day_, last_day_,
                  resume_ != nullptr ? &resume_->users[u] : nullptr,
                  /*park_fits=*/false, day_totals_);
    while (!task.step()) {
      OBS_SPAN("wave.flush");
      OBS_TIMED("sim.wave.flush_us");
      pool_->flush();
    }
    if (out_state_ != nullptr) task.export_state(out_state_->users[u]);
  }
}

void ShardScheduler::run_cohort() {
  // The worker's deep-copied predictor, shared by the shard's users (each
  // user's LingXi copies the handle, not the net) — see
  // set_predictor_factory for why sharing is bitwise invisible. The
  // clone-per-shard fallback covers direct ShardScheduler construction.
  std::optional<predictor::HybridExitPredictor> fallback_predictor;
  if (runner_.config().enable_lingxi && worker_predictor_ == nullptr) {
    LINGXI_ASSERT(runner_.predictor_factory_ != nullptr);
    fallback_predictor.emplace(runner_.predictor_factory_().with_private_net());
  }
  const predictor::HybridExitPredictor* shard_predictor =
      worker_predictor_ != nullptr ? worker_predictor_
                                   : (fallback_predictor ? &*fallback_predictor : nullptr);
  std::vector<std::unique_ptr<UserTask>> tasks;
  tasks.reserve(last_user_ - first_user_);
  for (std::size_t u = first_user_; u < last_user_; ++u) {
    tasks.push_back(std::make_unique<UserTask>(
        runner_, world_, seed_, u, acc_,
        runner_.config().enable_lingxi ? shard_predictor : nullptr, pool_.get(),
        first_day_, last_day_, resume_ != nullptr ? &resume_->users[u] : nullptr,
        /*park_fits=*/true, day_totals_));
  }

  // Live tasks in ascending user order. Each wave steps every live task
  // until it parks or completes; the wave's parked optimizer fits then run
  // as one pooled batch, one pooled flush serves all parked queries, and
  // the next wave resumes the parked tasks. The fit batch is determined by
  // task order alone and every fit touches only its own user's state, so
  // neither the pooling nor the worker count can change any result.
  std::vector<std::size_t> live;
  live.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) live.push_back(i);
  std::vector<std::size_t> parked;
  std::vector<core::LingXi::OptimizationRun*> fits;
  while (!live.empty()) {
    parked.clear();
    fits.clear();
    for (const std::size_t i : live) {
      if (tasks[i]->step()) {
        if (out_state_ != nullptr) {
          tasks[i]->export_state(out_state_->users[first_user_ + i]);
        }
        tasks[i].reset();  // free completed per-user state before the shard ends
      } else {
        parked.push_back(i);
        if (core::LingXi::OptimizationRun* fit = tasks[i]->parked_fit()) {
          fits.push_back(fit);
        }
      }
    }
    live = parked;
    if (!fits.empty()) {
      if (obs::Registry* reg = obs::Registry::active()) {
        reg->observe("sim.wave.pooled_fits", obs::HistogramSpec::rows(),
                     static_cast<double>(fits.size()));
      }
      OBS_SPAN("wave.fits");
      OBS_TIMED("sim.wave.fits_us");
      if (fit_pool_ != nullptr) {
        fit_pool_->run(fits.size(), [&](std::size_t i) { fits[i]->run_fit(); });
      } else {
        for (core::LingXi::OptimizationRun* fit : fits) fit->run_fit();
      }
    }
    if (!live.empty()) {
      if (obs::Registry* reg = obs::Registry::active()) {
        reg->add("sim.wave.count");
        reg->observe("sim.wave.parked_tasks", obs::HistogramSpec::rows(),
                     static_cast<double>(live.size()));
      }
      OBS_SPAN("wave.flush");
      OBS_TIMED("sim.wave.flush_us");
      pool_->flush();
    }
  }
}

FleetRunStats ShardScheduler::stats() const {
  const auto& ps = pool_->stats();
  return FleetRunStats{ps.flushes, ps.queries, ps.net_batches, ps.max_flush};
}

}  // namespace lingxi::sim
