#include "sim/optimizer_pool.h"

#include "common/assert.h"

namespace lingxi::sim {

OptimizerPool::OptimizerPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

OptimizerPool::~OptimizerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t OptimizerPool::drain(Batch& batch) {
  std::size_t ran = 0;
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return ran;
    (*batch.fn)(i);
    ++ran;
  }
}

void OptimizerPool::run(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    LINGXI_ASSERT(batch_ == nullptr);  // not reentrant
    batch_ = batch;
  }
  work_cv_.notify_all();

  const std::size_t ran = drain(*batch);
  const std::size_t done =
      batch->done.fetch_add(ran, std::memory_order_acq_rel) + ran;
  if (done >= count) {
    // Everything finished before any worker needed to report back; the
    // publication slot may still hold the batch if no worker ever woke.
    std::lock_guard<std::mutex> lock(mutex_);
    if (batch_ == batch) batch_.reset();
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return batch->done.load(std::memory_order_acquire) >= count; });
}

void OptimizerPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || batch_ != nullptr; });
      if (shutdown_) return;
      batch = batch_;
      // Claim eagerly: if the batch is already exhausted, unpublish it so
      // the next run() can start and this worker goes back to sleep.
      if (batch->next.load(std::memory_order_relaxed) >= batch->count) {
        if (batch_ == batch) batch_.reset();
        continue;
      }
    }
    const std::size_t ran = drain(*batch);
    const std::size_t done =
        batch->done.fetch_add(ran, std::memory_order_acq_rel) + ran;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (batch_ == batch) batch_.reset();
    }
    if (done >= batch->count) done_cv_.notify_all();
  }
}

}  // namespace lingxi::sim
