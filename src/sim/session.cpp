#include "sim/session.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/running_stats.h"

namespace lingxi::sim {

bool exited_during_stall(const SessionResult& session, Seconds stall_threshold) noexcept {
  if (!session.exited || session.segments.empty()) return false;
  const std::size_t n = session.segments.size();
  if (session.segments[n - 1].stall_time > stall_threshold) return true;
  return n >= 2 && session.segments[n - 2].stall_time > stall_threshold;
}

double qoe_lin(const SessionResult& session, const trace::BitrateLadder& ladder,
               trace::QualityMetric metric, double stall_weight, double switch_weight) {
  double quality = 0.0;
  double stall = 0.0;
  double smooth = 0.0;
  for (std::size_t i = 0; i < session.segments.size(); ++i) {
    const auto& seg = session.segments[i];
    quality += ladder.quality(seg.level, metric);
    stall += seg.stall_time;
    if (i > 0) {
      smooth += std::fabs(ladder.quality(seg.level, metric) -
                          ladder.quality(session.segments[i - 1].level, metric));
    }
  }
  return quality - stall_weight * stall - switch_weight * smooth;
}

SessionResult SessionSimulator::run(const trace::Video& video, BitrateSelector& abr,
                                    trace::BandwidthModel& bandwidth, ExitModel* exit_model,
                                    Rng& rng) const {
  abr.reset();
  if (exit_model != nullptr) exit_model->begin_session();

  PlayerEnv env(config_.player);
  SessionResult result;
  result.segments.reserve(video.segment_count());

  AbrObservation obs;
  obs.video = &video;
  obs.rtt = config_.player.rtt;

  RunningStats bw_stats;
  RunningStats bitrate_stats;
  Seconds cumulative_stall = 0.0;
  std::size_t stall_events = 0;

  for (std::size_t k = 0; k < video.segment_count(); ++k) {
    obs.buffer = env.buffer();
    obs.buffer_max = env.buffer_max();
    obs.next_segment = k;
    obs.first_segment = (k == 0);

    const std::size_t level = abr.select(obs);
    LINGXI_ASSERT(level < video.ladder().levels());

    const Kbps current_bw = bandwidth.sample(env.wall_clock(), rng);
    const Bytes size = video.segment_size(k, level);

    SegmentRecord seg;
    seg.index = k;
    seg.position = static_cast<double>(k) * video.segment_duration();
    seg.level = level;
    seg.bitrate = video.ladder().bitrate(level);
    seg.size = size;
    seg.throughput = current_bw;
    seg.buffer_before = env.buffer();

    const StepResult step = env.step(size, video.segment_duration(), current_bw);
    seg.download_time = step.download_time;
    seg.stall_time = step.stall_time;
    seg.buffer_after = step.buffer_after;

    // Segment 0's starvation is startup latency (time to first frame), not a
    // rebuffer: playback has not begun yet.
    if (k == 0 && config_.player.startup_buffer <= 0.0) {
      result.startup_delay = step.stall_time;
      seg.stall_time = 0.0;
    }

    if (seg.stall_time > config_.stall_event_threshold) ++stall_events;
    cumulative_stall += seg.stall_time;
    seg.cumulative_stall = cumulative_stall;
    seg.cumulative_stall_events = stall_events;

    // Maintain ABR-visible history.
    obs.throughput_history.push_back(current_bw);
    obs.download_time_history.push_back(step.download_time);
    if (obs.throughput_history.size() > config_.throughput_window) {
      obs.throughput_history.erase(obs.throughput_history.begin());
      obs.download_time_history.erase(obs.download_time_history.begin());
    }
    obs.last_level = level;

    bw_stats.add(current_bw);
    if (config_.adaptive_buffer_max && bw_stats.count() >= 2) {
      env.update_buffer_max(bw_stats.mean(), bw_stats.stddev());
    }

    if (k > 0 && level != result.segments.back().level) ++result.quality_switches;
    bitrate_stats.add(seg.bitrate);
    result.segments.push_back(seg);
    result.watch_time += video.segment_duration();

    if (exit_model != nullptr) {
      const double p = exit_model->exit_probability(seg);
      LINGXI_DASSERT(p >= 0.0 && p <= 1.0);
      if (rng.bernoulli(p)) {
        result.exited = true;
        break;
      }
    }
  }

  result.total_stall = cumulative_stall;
  result.stall_events = stall_events;
  result.mean_bitrate = bitrate_stats.mean();
  return result;
}

}  // namespace lingxi::sim
