#include "sim/session.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/running_stats.h"

namespace lingxi::sim {

bool exited_during_stall(const SessionResult& session, Seconds stall_threshold) noexcept {
  if (!session.exited || session.segments.empty()) return false;
  const std::size_t n = session.segments.size();
  if (session.segments[n - 1].stall_time > stall_threshold) return true;
  return n >= 2 && session.segments[n - 2].stall_time > stall_threshold;
}

double qoe_lin(const SessionResult& session, const trace::BitrateLadder& ladder,
               trace::QualityMetric metric, double stall_weight, double switch_weight) {
  double quality = 0.0;
  double stall = 0.0;
  double smooth = 0.0;
  for (std::size_t i = 0; i < session.segments.size(); ++i) {
    const auto& seg = session.segments[i];
    quality += ladder.quality(seg.level, metric);
    stall += seg.stall_time;
    if (i > 0) {
      smooth += std::fabs(ladder.quality(seg.level, metric) -
                          ladder.quality(session.segments[i - 1].level, metric));
    }
  }
  return quality - stall_weight * stall - switch_weight * smooth;
}

SessionStepper::SessionStepper(const SessionSimulator& sim, const trace::Video& video,
                               BitrateSelector& abr, trace::BandwidthModel& bandwidth,
                               Rng& rng)
    : sim_(sim), video_(video), abr_(abr), bandwidth_(bandwidth), rng_(rng),
      env_(sim.config().player) {
  abr_.reset();
  result_.segments.reserve(video_.segment_count());
  obs_.video = &video_;
  obs_.rtt = sim_.config().player.rtt;
}

const SegmentRecord* SessionStepper::advance() {
  LINGXI_ASSERT(!pending_);
  if (done_) return nullptr;
  const SessionSimulator::Config& config = sim_.config();
  const std::size_t k = next_segment_;
  if (k >= video_.segment_count()) {
    finalize();
    return nullptr;
  }

  obs_.buffer = env_.buffer();
  obs_.buffer_max = env_.buffer_max();
  obs_.next_segment = k;
  obs_.first_segment = (k == 0);

  const std::size_t level = abr_.select(obs_);
  LINGXI_ASSERT(level < video_.ladder().levels());

  const Kbps current_bw = bandwidth_.sample(env_.wall_clock(), rng_);
  const Bytes size = video_.segment_size(k, level);

  SegmentRecord seg;
  seg.index = k;
  seg.position = static_cast<double>(k) * video_.segment_duration();
  seg.level = level;
  seg.bitrate = video_.ladder().bitrate(level);
  seg.size = size;
  seg.throughput = current_bw;
  seg.buffer_before = env_.buffer();

  const StepResult step = env_.step(size, video_.segment_duration(), current_bw);
  seg.download_time = step.download_time;
  seg.stall_time = step.stall_time;
  seg.buffer_after = step.buffer_after;

  // Segment 0's starvation is startup latency (time to first frame), not a
  // rebuffer: playback has not begun yet.
  if (k == 0 && config.player.startup_buffer <= 0.0) {
    result_.startup_delay = step.stall_time;
    seg.stall_time = 0.0;
  }

  if (seg.stall_time > config.stall_event_threshold) ++stall_events_;
  cumulative_stall_ += seg.stall_time;
  seg.cumulative_stall = cumulative_stall_;
  seg.cumulative_stall_events = stall_events_;

  // Maintain ABR-visible history.
  obs_.throughput_history.push_back(current_bw);
  obs_.download_time_history.push_back(step.download_time);
  if (obs_.throughput_history.size() > config.throughput_window) {
    obs_.throughput_history.erase(obs_.throughput_history.begin());
    obs_.download_time_history.erase(obs_.download_time_history.begin());
  }
  obs_.last_level = level;

  bw_stats_.add(current_bw);
  if (config.adaptive_buffer_max && bw_stats_.count() >= 2) {
    env_.update_buffer_max(bw_stats_.mean(), bw_stats_.stddev());
  }

  if (k > 0 && level != result_.segments.back().level) ++result_.quality_switches;
  bitrate_stats_.add(seg.bitrate);
  result_.segments.push_back(seg);
  result_.watch_time += video_.segment_duration();

  ++next_segment_;
  pending_ = true;
  return &result_.segments.back();
}

void SessionStepper::resolve(double exit_probability) {
  LINGXI_ASSERT(pending_);
  pending_ = false;
  LINGXI_DASSERT(exit_probability >= 0.0 && exit_probability <= 1.0);
  if (rng_.bernoulli(exit_probability)) {
    result_.exited = true;
    finalize();
  }
}

void SessionStepper::skip() noexcept {
  LINGXI_DASSERT(pending_);
  pending_ = false;
}

void SessionStepper::finalize() {
  result_.total_stall = cumulative_stall_;
  result_.stall_events = stall_events_;
  result_.mean_bitrate = bitrate_stats_.mean();
  done_ = true;
}

SessionResult SessionStepper::take_result() {
  LINGXI_ASSERT(done_);
  return std::move(result_);
}

SessionResult SessionSimulator::run(const trace::Video& video, BitrateSelector& abr,
                                    trace::BandwidthModel& bandwidth, ExitModel* exit_model,
                                    Rng& rng) const {
  SessionStepper stepper(*this, video, abr, bandwidth, rng);
  if (exit_model != nullptr) exit_model->begin_session();
  while (const SegmentRecord* seg = stepper.advance()) {
    if (exit_model != nullptr) {
      stepper.resolve(exit_model->exit_probability(*seg));
    } else {
      stepper.skip();
    }
  }
  return stepper.take_result();
}

}  // namespace lingxi::sim
