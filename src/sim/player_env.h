// Player environment: the buffer/stall dynamics of Equation 3.
//
//   C_k        ~ bandwidth model
//   stall_k    = [d_k(Q_k)/C_k - B_k]_+
//   B_tmp      = [B_k - d_k(Q_k)/C_k]_+ + L
//   delta_t_k  = [B_tmp - B_max]_+ + RTT          (wait before next request)
//   B_{k+1}    = [B_tmp - delta_t_k]_+
//   B_max      = f(N(mu_C, sigma_C^2))            (bandwidth-adaptive cap)
//
// This is the paper's own model of the production player (§3.2), which in
// turn follows the classic MPC formulation [Yin et al., SIGCOMM'15]. The
// same environment is used both for "real" synthetic sessions and for
// LingXi's Monte Carlo virtual playback — exactly as in the paper, where
// Eq. 3 drives the rollouts.
#pragma once

#include "common/units.h"

namespace lingxi::sim {

/// Static player parameters.
struct PlayerConfig {
  Seconds rtt = 0.08;              ///< request round-trip time
  Seconds base_buffer_max = 8.0;   ///< B_max at the reference bandwidth
  Seconds min_buffer_max = 4.0;    ///< lower clamp for adaptive B_max
  /// Upper clamp for adaptive B_max. Kept moderate: short-video players
  /// bound prefetch (abandoned videos waste the bytes), and an oversized
  /// buffer would neutralize buffer-relative ABR knobs like HYB's beta.
  Seconds max_buffer_max = 12.0;
  Kbps reference_bandwidth = 4300.0;  ///< bandwidth at which B_max == base
  Seconds startup_buffer = 0.0;    ///< initial buffer level
};

/// B_max = f(N(mu, sigma^2)): the production player grows the buffer cap for
/// bandwidth-constrained / bursty users (more headroom against stalls) and
/// shrinks it when bandwidth comfortably exceeds the ladder top (less wasted
/// prefetch on abandoned short videos). We implement
///   B_max = clamp(base * sqrt(ref / mu_eff)),  mu_eff = max(mu - sigma, eps)
/// which is monotone decreasing in effective bandwidth.
Seconds adaptive_buffer_max(const PlayerConfig& config, Kbps mean_bw, Kbps sd_bw) noexcept;

/// Outcome of downloading one segment.
struct StepResult {
  Seconds download_time = 0.0;  ///< d_k(Q_k) / C_k
  Seconds stall_time = 0.0;     ///< playback starvation during the download
  Seconds wait_time = 0.0;      ///< delta_t_k: cap-induced wait + RTT
  Seconds buffer_after = 0.0;   ///< B_{k+1}
  Seconds wall_clock_after = 0.0;
};

/// Mutable player state evolving per Eq. 3.
class PlayerEnv {
 public:
  explicit PlayerEnv(PlayerConfig config);

  /// Download a segment of `size` bytes / `duration` seconds of media at
  /// throughput `bandwidth`; advances buffer and wall clock.
  StepResult step(Bytes size, Seconds duration, Kbps bandwidth);

  Seconds buffer() const noexcept { return buffer_; }
  Seconds wall_clock() const noexcept { return wall_clock_; }
  Seconds buffer_max() const noexcept { return buffer_max_; }
  Seconds total_stall() const noexcept { return total_stall_; }
  const PlayerConfig& config() const noexcept { return config_; }

  /// Re-derive B_max from the current bandwidth distribution estimate
  /// (the "online adjustment" in Eq. 3).
  void update_buffer_max(Kbps mean_bw, Kbps sd_bw) noexcept;

  /// Override buffer level (used to seed virtual playback from live state).
  void set_buffer(Seconds b) noexcept;

 private:
  PlayerConfig config_;
  Seconds buffer_;
  Seconds buffer_max_;
  Seconds wall_clock_ = 0.0;
  Seconds total_stall_ = 0.0;
};

}  // namespace lingxi::sim
