// Monte Carlo virtual playback — Algorithm 2 (EvaluateParameters).
//
// Rolls a candidate-parameterized ABR forward through M simulated sessions
// of at most T_sample seconds each, drawing bandwidth from the client's
// fitted N(mu, sigma^2) model and exits from the exit-rate predictor, and
// returns R_exit = exited_count / watched_count.
//
// The evaluator also implements the deployment section's first pruning
// stage: once enough samples ran, if even an exit-free completion of the
// remaining samples could not bring R_exit below the best known alternative,
// evaluation stops early.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "sim/session.h"

namespace lingxi::sim {

struct MonteCarloConfig {
  std::size_t samples = 32;              ///< M
  Seconds sample_duration = 45.0;        ///< T_sample (mean online video length)
  bool enable_pruning = true;
  std::size_t min_samples_before_prune = 8;
};

struct MonteCarloResult {
  double exit_rate = 0.0;
  std::size_t exited_count = 0;
  std::size_t watched_count = 0;
  std::size_t samples_run = 0;
  bool pruned = false;
};

class MonteCarloEvaluator {
 public:
  MonteCarloEvaluator(MonteCarloConfig mc_config, SessionSimulator::Config session_config);

  /// Evaluate one candidate. `abr` must already carry the candidate QoE
  /// parameters; `exit_model` must be seeded with the live user state;
  /// `initial_buffer` comes from the live player; `best_known_exit_rate`
  /// enables pruning (pass +inf to disable for this call).
  MonteCarloResult evaluate(const trace::Video& virtual_video, BitrateSelector& abr,
                            ExitModel& exit_model, trace::BandwidthModel& bandwidth,
                            Seconds initial_buffer, double best_known_exit_rate,
                            Rng& rng) const;

  /// Convenience: build the virtual video used for rollouts, duration =
  /// T_sample. With an Rng the segments carry VBR size jitter (`vbr_sigma`),
  /// matching the encoded videos the live player actually downloads; without
  /// one the video is CBR.
  trace::Video make_virtual_video(const trace::BitrateLadder& ladder,
                                  Seconds segment_duration, Rng* rng = nullptr,
                                  double vbr_sigma = 0.15) const;

  const MonteCarloConfig& config() const noexcept { return mc_config_; }

 private:
  MonteCarloConfig mc_config_;
  SessionSimulator::Config session_config_;
};

}  // namespace lingxi::sim
