// Monte Carlo virtual playback — Algorithm 2 (EvaluateParameters).
//
// Rolls a candidate-parameterized ABR forward through M simulated sessions
// of at most T_sample seconds each, drawing bandwidth from the client's
// fitted N(mu, sigma^2) model and exits from the exit-rate predictor, and
// returns R_exit = exited_count / watched_count.
//
// The evaluator also implements the deployment section's first pruning
// stage: once enough samples ran, if even an exit-free completion of the
// remaining samples could not bring R_exit below the best known alternative,
// evaluation stops early.
#pragma once

#include <cstddef>

#include "abr/abr.h"
#include "common/rng.h"
#include "sim/session.h"

namespace lingxi::sim {

struct MonteCarloConfig {
  std::size_t samples = 32;              ///< M
  Seconds sample_duration = 45.0;        ///< T_sample (mean online video length)
  bool enable_pruning = true;
  std::size_t min_samples_before_prune = 8;
  /// Rollouts advanced in lockstep by evaluate_rollouts(), with the exit
  /// predictor evaluated once per step as a batch across rollouts. 1 runs
  /// the scalar reference path (whole sessions, one at a time). Results are
  /// bitwise identical for every value — the parity suite asserts it.
  std::size_t batch_size = 1;
};

struct MonteCarloResult {
  double exit_rate = 0.0;
  std::size_t exited_count = 0;
  std::size_t watched_count = 0;
  std::size_t samples_run = 0;
  bool pruned = false;
};

class MonteCarloEvaluator {
 public:
  MonteCarloEvaluator(MonteCarloConfig mc_config, SessionSimulator::Config session_config);

  /// Evaluate one candidate. `abr` must already carry the candidate QoE
  /// parameters; `exit_model` must be seeded with the live user state;
  /// `initial_buffer` comes from the live player; `best_known_exit_rate`
  /// enables pruning (pass +inf to disable for this call).
  MonteCarloResult evaluate(const trace::Video& virtual_video, BitrateSelector& abr,
                            ExitModel& exit_model, trace::BandwidthModel& bandwidth,
                            Seconds initial_buffer, double best_known_exit_rate,
                            Rng& rng) const;

  /// Like evaluate(), but with per-rollout isolation: every rollout gets its
  /// own rng stream (exactly `samples` forks are taken from `rng` upfront,
  /// regardless of pruning), its own clone of `abr` and `bandwidth`, and its
  /// own exit model from `exits`. With batch_size == 1 the rollouts run as
  /// whole sequential sessions — the scalar path; with batch_size > 1 they
  /// advance in lockstep waves (SessionStepper) and the exit predictor is
  /// evaluated once per step as a batch across the wave. Both paths return
  /// bitwise-identical results and leave `rng` in the same state — the
  /// contract behind the fleet's scalar/batched checksum identity. Pruning
  /// follows the same per-rollout replay order in both modes; a lockstep
  /// wave merely cannot stop mid-wave, so batching trades some pruned-away
  /// work for batched forwards without changing any reported number.
  MonteCarloResult evaluate_rollouts(const trace::Video& virtual_video,
                                     const abr::AbrAlgorithm& abr,
                                     const BatchExitEvaluator& exits,
                                     const trace::BandwidthModel& bandwidth,
                                     Seconds initial_buffer, double best_known_exit_rate,
                                     Rng& rng) const;

  /// Convenience: build the virtual video used for rollouts, duration =
  /// T_sample. With an Rng the segments carry VBR size jitter (`vbr_sigma`),
  /// matching the encoded videos the live player actually downloads; without
  /// one the video is CBR.
  trace::Video make_virtual_video(const trace::BitrateLadder& ladder,
                                  Seconds segment_duration, Rng* rng = nullptr,
                                  double vbr_sigma = 0.15) const;

  const MonteCarloConfig& config() const noexcept { return mc_config_; }

 private:
  MonteCarloConfig mc_config_;
  SessionSimulator::Config session_config_;
};

}  // namespace lingxi::sim
