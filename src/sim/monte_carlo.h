// Monte Carlo virtual playback — Algorithm 2 (EvaluateParameters).
//
// Rolls a candidate-parameterized ABR forward through M simulated sessions
// of at most T_sample seconds each, drawing bandwidth from the client's
// fitted N(mu, sigma^2) model and exits from the exit-rate predictor, and
// returns R_exit = exited_count / watched_count.
//
// The evaluator also implements the deployment section's first pruning
// stage: once enough samples ran, if even an exit-free completion of the
// remaining samples could not bring R_exit below the best known alternative,
// evaluation stops early.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "abr/abr.h"
#include "common/rng.h"
#include "sim/session.h"

namespace lingxi::sim {

struct MonteCarloConfig {
  std::size_t samples = 32;              ///< M
  Seconds sample_duration = 45.0;        ///< T_sample (mean online video length)
  bool enable_pruning = true;
  std::size_t min_samples_before_prune = 8;
  /// Rollouts advanced in lockstep by evaluate_rollouts(), with the exit
  /// predictor evaluated once per step as a batch across rollouts. 1 runs
  /// the scalar reference path (whole sessions, one at a time). Results are
  /// bitwise identical for every value — the parity suite asserts it.
  std::size_t batch_size = 1;
};

struct MonteCarloResult {
  double exit_rate = 0.0;
  std::size_t exited_count = 0;
  std::size_t watched_count = 0;
  std::size_t samples_run = 0;
  bool pruned = false;
};

class MonteCarloEvaluator {
 public:
  MonteCarloEvaluator(MonteCarloConfig mc_config, SessionSimulator::Config session_config);

  /// Evaluate one candidate. `abr` must already carry the candidate QoE
  /// parameters; `exit_model` must be seeded with the live user state;
  /// `initial_buffer` comes from the live player; `best_known_exit_rate`
  /// enables pruning (pass +inf to disable for this call).
  MonteCarloResult evaluate(const trace::Video& virtual_video, BitrateSelector& abr,
                            ExitModel& exit_model, trace::BandwidthModel& bandwidth,
                            Seconds initial_buffer, double best_known_exit_rate,
                            Rng& rng) const;

  /// Like evaluate(), but with per-rollout isolation: every rollout gets its
  /// own rng stream (exactly `samples` forks are taken from `rng` upfront,
  /// regardless of pruning), its own clone of `abr` and `bandwidth`, and its
  /// own exit model from `exits`. With batch_size == 1 the rollouts run as
  /// whole sequential sessions — the scalar path; with batch_size > 1 they
  /// advance in lockstep waves (SessionStepper) and the exit predictor is
  /// evaluated once per step as a batch across the wave. Both paths return
  /// bitwise-identical results and leave `rng` in the same state — the
  /// contract behind the fleet's scalar/batched checksum identity. Pruning
  /// follows the same per-rollout replay order in both modes; a lockstep
  /// wave merely cannot stop mid-wave, so batching trades some pruned-away
  /// work for batched forwards without changing any reported number. The
  /// batched mode is a convenience driver over RolloutWave (below), which
  /// also exposes the evaluation in resumable form.
  MonteCarloResult evaluate_rollouts(const trace::Video& virtual_video,
                                     const abr::AbrAlgorithm& abr,
                                     const BatchExitEvaluator& exits,
                                     const trace::BandwidthModel& bandwidth,
                                     Seconds initial_buffer, double best_known_exit_rate,
                                     Rng& rng) const;

  /// Convenience: build the virtual video used for rollouts, duration =
  /// T_sample. With an Rng the segments carry VBR size jitter (`vbr_sigma`),
  /// matching the encoded videos the live player actually downloads; without
  /// one the video is CBR.
  trace::Video make_virtual_video(const trace::BitrateLadder& ladder,
                                  Seconds segment_duration, Rng* rng = nullptr,
                                  double vbr_sigma = 0.15) const;

  const MonteCarloConfig& config() const noexcept { return mc_config_; }

 private:
  friend class RolloutWave;  // reads session_config_ to build its simulator

  MonteCarloConfig mc_config_;
  SessionSimulator::Config session_config_;
};

/// Resumable form of MonteCarloEvaluator::evaluate_rollouts: one candidate
/// evaluation that can pause whenever its rollouts have parked exit-predictor
/// queries into the BatchExitEvaluator, so a caller may pool the flush across
/// MANY concurrent evaluations (different candidates, different users — the
/// cross-user wave scheduler) instead of flushing per evaluation.
///
/// Protocol: step() advances every live rollout until it either finishes or
/// parks a query into `exits`, folds completed rollouts into the result in
/// rollout order (pruning fires at exactly the rollout it would under the
/// sequential path), and returns true when the evaluation is complete. When
/// it returns false, at least one query is parked; the caller must make the
/// parked probabilities available (either `exits` computes them itself on
/// flush, or the caller flushes the shared ExitQueryPool the evaluator parks
/// into) and then call step() again — the next step() collects the
/// probabilities via exits.flush() before advancing.
///
/// The rng contract matches evaluate_rollouts: exactly `samples` forks are
/// taken from `rng` at construction, so the caller's stream advances
/// identically no matter how the evaluation is driven, batched or pruned.
/// All referenced objects must outlive the wave; the wave is neither
/// copyable nor movable (rollout steppers hold pointers into it).
class RolloutWave {
 public:
  RolloutWave(const MonteCarloEvaluator& evaluator, const trace::Video& virtual_video,
              const abr::AbrAlgorithm& abr, const BatchExitEvaluator& exits,
              const trace::BandwidthModel& bandwidth, Seconds initial_buffer,
              double best_known_exit_rate, Rng& rng);
  RolloutWave(const RolloutWave&) = delete;
  RolloutWave& operator=(const RolloutWave&) = delete;

  /// Advance; true = finished (take_result() is valid), false = parked.
  bool step();
  bool finished() const noexcept { return finished_; }
  MonteCarloResult take_result();

 private:
  struct Slot {
    std::unique_ptr<abr::AbrAlgorithm> abr;
    std::unique_ptr<trace::BandwidthModel> bw;
    std::unique_ptr<ExitModel> model;
    std::optional<SessionStepper> stepper;
    SessionResult session;
    bool done = false;
  };

  void start_chunk();
  /// Fold one completed rollout; true when pruning stops the evaluation.
  bool accumulate(const SessionResult& session);
  void finish();

  MonteCarloConfig mc_;
  SessionSimulator sim_;
  const trace::Video& video_;
  const abr::AbrAlgorithm& abr_;
  const BatchExitEvaluator& exits_;
  const trace::BandwidthModel& bandwidth_;
  double best_known_exit_rate_;

  std::vector<Rng> streams_;  ///< one per rollout, forked upfront
  MonteCarloResult result_;
  std::size_t max_segments_ = 0;

  std::vector<Slot> slots_;           ///< current lockstep chunk
  std::vector<std::size_t> parked_;   ///< slot index per parked query, park order
  std::vector<double> probs_;
  std::size_t chunk_first_ = 0;       ///< rollout index of slots_[0]
  std::size_t accumulated_ = 0;       ///< slots_[0, accumulated_) folded in
  bool needs_flush_ = false;
  bool finished_ = false;
};

}  // namespace lingxi::sim
