#include "sim/player_env.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::sim {

Seconds adaptive_buffer_max(const PlayerConfig& config, Kbps mean_bw, Kbps sd_bw) noexcept {
  const Kbps effective = std::max(1.0, mean_bw - sd_bw);
  const double scale = std::sqrt(config.reference_bandwidth / effective);
  return std::clamp(config.base_buffer_max * scale, config.min_buffer_max,
                    config.max_buffer_max);
}

PlayerEnv::PlayerEnv(PlayerConfig config)
    : config_(config), buffer_(config.startup_buffer), buffer_max_(config.base_buffer_max) {
  LINGXI_ASSERT(config_.rtt >= 0.0);
  LINGXI_ASSERT(config_.base_buffer_max > 0.0);
  LINGXI_ASSERT(config_.min_buffer_max > 0.0);
  LINGXI_ASSERT(config_.max_buffer_max >= config_.min_buffer_max);
  LINGXI_ASSERT(config_.startup_buffer >= 0.0);
}

StepResult PlayerEnv::step(Bytes size, Seconds duration, Kbps bandwidth) {
  LINGXI_ASSERT(size > 0.0);
  LINGXI_ASSERT(duration > 0.0);
  LINGXI_ASSERT(bandwidth > 0.0);

  StepResult r;
  r.download_time = units::download_time(size, bandwidth);
  // Starvation: the part of the download not covered by buffered media.
  r.stall_time = std::max(0.0, r.download_time - buffer_);
  // [B_k - d/C]_+ + L
  const Seconds b_tmp = std::max(0.0, buffer_ - r.download_time) + duration;
  // delta_t = [B_tmp - B_max]_+ + RTT
  r.wait_time = std::max(0.0, b_tmp - buffer_max_) + config_.rtt;
  // B_{k+1} = [B_tmp - delta_t]_+
  buffer_ = std::max(0.0, b_tmp - r.wait_time);
  r.buffer_after = buffer_;

  total_stall_ += r.stall_time;
  wall_clock_ += r.download_time + r.wait_time;
  r.wall_clock_after = wall_clock_;
  return r;
}

void PlayerEnv::update_buffer_max(Kbps mean_bw, Kbps sd_bw) noexcept {
  buffer_max_ = adaptive_buffer_max(config_, mean_bw, sd_bw);
}

void PlayerEnv::set_buffer(Seconds b) noexcept { buffer_ = std::max(0.0, b); }

}  // namespace lingxi::sim
