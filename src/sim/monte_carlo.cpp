#include "sim/monte_carlo.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::sim {

MonteCarloEvaluator::MonteCarloEvaluator(MonteCarloConfig mc_config,
                                         SessionSimulator::Config session_config)
    : mc_config_(mc_config), session_config_(session_config) {
  LINGXI_ASSERT(mc_config_.samples > 0);
  LINGXI_ASSERT(mc_config_.sample_duration > 0.0);
}

trace::Video MonteCarloEvaluator::make_virtual_video(const trace::BitrateLadder& ladder,
                                                     Seconds segment_duration, Rng* rng,
                                                     double vbr_sigma) const {
  const auto segments = static_cast<std::size_t>(
      std::max(1.0, std::ceil(mc_config_.sample_duration / segment_duration)));
  if (rng != nullptr && vbr_sigma > 0.0) {
    return trace::Video::vbr(ladder, segments, segment_duration, vbr_sigma, *rng);
  }
  return trace::Video{ladder, segments, segment_duration};
}

MonteCarloResult MonteCarloEvaluator::evaluate(const trace::Video& virtual_video,
                                               BitrateSelector& abr, ExitModel& exit_model,
                                               trace::BandwidthModel& bandwidth,
                                               Seconds initial_buffer,
                                               double best_known_exit_rate, Rng& rng) const {
  SessionSimulator::Config cfg = session_config_;
  cfg.player.startup_buffer = std::max(0.0, initial_buffer);
  const SessionSimulator sim(cfg);

  MonteCarloResult result;
  const std::size_t max_segments_per_sample = virtual_video.segment_count();

  for (std::size_t m = 0; m < mc_config_.samples; ++m) {
    auto bw = bandwidth.clone();  // independent stochastic rollout
    const SessionResult session = sim.run(virtual_video, abr, *bw, &exit_model, rng);
    result.watched_count += session.segments.size();
    if (session.exited) ++result.exited_count;
    ++result.samples_run;

    if (mc_config_.enable_pruning && result.samples_run >= mc_config_.min_samples_before_prune &&
        std::isfinite(best_known_exit_rate)) {
      // Optimistic bound: every remaining sample watches the full virtual
      // video and never exits.
      const std::size_t remaining = mc_config_.samples - result.samples_run;
      const double optimistic_watched = static_cast<double>(
          result.watched_count + remaining * max_segments_per_sample);
      const double lower_bound = static_cast<double>(result.exited_count) / optimistic_watched;
      if (lower_bound > best_known_exit_rate) {
        result.pruned = true;
        break;
      }
    }
  }

  result.exit_rate = result.watched_count == 0
                         ? 0.0
                         : static_cast<double>(result.exited_count) /
                               static_cast<double>(result.watched_count);
  return result;
}

}  // namespace lingxi::sim
