#include "sim/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/assert.h"

namespace lingxi::sim {
namespace {

/// Fold one completed rollout into `result` and apply the optimistic prune
/// bound (every remaining sample watches the full virtual video and never
/// exits); true when evaluation must stop. THE accumulation implementation,
/// shared by the sequential path and RolloutWave so both prune at exactly
/// the same rollout — the parity is structural, not maintained by hand.
bool fold_rollout(const MonteCarloConfig& mc, std::size_t max_segments_per_sample,
                  double best_known_exit_rate, const SessionResult& session,
                  MonteCarloResult& result) {
  result.watched_count += session.segments.size();
  if (session.exited) ++result.exited_count;
  ++result.samples_run;
  if (mc.enable_pruning && result.samples_run >= mc.min_samples_before_prune &&
      std::isfinite(best_known_exit_rate)) {
    const std::size_t remaining = mc.samples - result.samples_run;
    const double optimistic_watched =
        static_cast<double>(result.watched_count + remaining * max_segments_per_sample);
    const double lower_bound =
        static_cast<double>(result.exited_count) / optimistic_watched;
    if (lower_bound > best_known_exit_rate) {
      result.pruned = true;
      return true;
    }
  }
  return false;
}

}  // namespace

MonteCarloEvaluator::MonteCarloEvaluator(MonteCarloConfig mc_config,
                                         SessionSimulator::Config session_config)
    : mc_config_(mc_config), session_config_(session_config) {
  LINGXI_ASSERT(mc_config_.samples > 0);
  LINGXI_ASSERT(mc_config_.sample_duration > 0.0);
}

trace::Video MonteCarloEvaluator::make_virtual_video(const trace::BitrateLadder& ladder,
                                                     Seconds segment_duration, Rng* rng,
                                                     double vbr_sigma) const {
  const auto segments = static_cast<std::size_t>(
      std::max(1.0, std::ceil(mc_config_.sample_duration / segment_duration)));
  if (rng != nullptr && vbr_sigma > 0.0) {
    return trace::Video::vbr(ladder, segments, segment_duration, vbr_sigma, *rng);
  }
  return trace::Video{ladder, segments, segment_duration};
}

MonteCarloResult MonteCarloEvaluator::evaluate(const trace::Video& virtual_video,
                                               BitrateSelector& abr, ExitModel& exit_model,
                                               trace::BandwidthModel& bandwidth,
                                               Seconds initial_buffer,
                                               double best_known_exit_rate, Rng& rng) const {
  SessionSimulator::Config cfg = session_config_;
  cfg.player.startup_buffer = std::max(0.0, initial_buffer);
  const SessionSimulator sim(cfg);

  MonteCarloResult result;
  const std::size_t max_segments_per_sample = virtual_video.segment_count();

  for (std::size_t m = 0; m < mc_config_.samples; ++m) {
    auto bw = bandwidth.clone();  // independent stochastic rollout
    const SessionResult session = sim.run(virtual_video, abr, *bw, &exit_model, rng);
    result.watched_count += session.segments.size();
    if (session.exited) ++result.exited_count;
    ++result.samples_run;

    if (mc_config_.enable_pruning && result.samples_run >= mc_config_.min_samples_before_prune &&
        std::isfinite(best_known_exit_rate)) {
      // Optimistic bound: every remaining sample watches the full virtual
      // video and never exits.
      const std::size_t remaining = mc_config_.samples - result.samples_run;
      const double optimistic_watched = static_cast<double>(
          result.watched_count + remaining * max_segments_per_sample);
      const double lower_bound = static_cast<double>(result.exited_count) / optimistic_watched;
      if (lower_bound > best_known_exit_rate) {
        result.pruned = true;
        break;
      }
    }
  }

  result.exit_rate = result.watched_count == 0
                         ? 0.0
                         : static_cast<double>(result.exited_count) /
                               static_cast<double>(result.watched_count);
  return result;
}

MonteCarloResult MonteCarloEvaluator::evaluate_rollouts(
    const trace::Video& virtual_video, const abr::AbrAlgorithm& abr,
    const BatchExitEvaluator& exits, const trace::BandwidthModel& bandwidth,
    Seconds initial_buffer, double best_known_exit_rate, Rng& rng) const {
  const std::size_t batch = std::max<std::size_t>(1, mc_config_.batch_size);
  if (batch > 1) {
    // Lockstep path: the resumable wave drives itself to completion here
    // (its exits.flush() computes the parked batch directly); the cross-user
    // scheduler drives the same class with flushes pooled across
    // evaluations instead. The wave forks the per-rollout streams itself.
    RolloutWave wave(*this, virtual_video, abr, exits, bandwidth, initial_buffer,
                     best_known_exit_rate, rng);
    while (!wave.step()) {
    }
    return wave.take_result();
  }

  SessionSimulator::Config cfg = session_config_;
  cfg.player.startup_buffer = std::max(0.0, initial_buffer);
  const SessionSimulator sim(cfg);

  // Per-rollout rng streams, forked upfront so the caller's rng advances by
  // exactly `samples` forks no matter how pruning truncates the run — the
  // caller's subsequent draws (e.g. the next OBO candidate) must not depend
  // on the batch size or the prune point.
  std::vector<Rng> streams;
  streams.reserve(mc_config_.samples);
  for (std::size_t m = 0; m < mc_config_.samples; ++m) streams.push_back(rng.fork());

  MonteCarloResult result;
  const std::size_t max_segments_per_sample = virtual_video.segment_count();

  for (std::size_t m = 0; m < mc_config_.samples; ++m) {
    const auto rollout_abr = abr.clone();
    const auto bw = bandwidth.clone();
    const auto model = exits.make_model();
    const SessionResult session =
        sim.run(virtual_video, *rollout_abr, *bw, model.get(), streams[m]);
    if (fold_rollout(mc_config_, max_segments_per_sample, best_known_exit_rate, session,
                     result)) {
      break;
    }
  }

  result.exit_rate = result.watched_count == 0
                         ? 0.0
                         : static_cast<double>(result.exited_count) /
                               static_cast<double>(result.watched_count);
  return result;
}

RolloutWave::RolloutWave(const MonteCarloEvaluator& evaluator,
                         const trace::Video& virtual_video, const abr::AbrAlgorithm& abr,
                         const BatchExitEvaluator& exits,
                         const trace::BandwidthModel& bandwidth, Seconds initial_buffer,
                         double best_known_exit_rate, Rng& rng)
    : mc_(evaluator.config()),
      sim_([&] {
        SessionSimulator::Config cfg = evaluator.session_config_;
        cfg.player.startup_buffer = std::max(0.0, initial_buffer);
        return SessionSimulator(cfg);
      }()),
      video_(virtual_video),
      abr_(abr),
      exits_(exits),
      bandwidth_(bandwidth),
      best_known_exit_rate_(best_known_exit_rate),
      max_segments_(virtual_video.segment_count()) {
  // Fork every rollout stream upfront (the evaluate_rollouts rng contract).
  streams_.reserve(mc_.samples);
  for (std::size_t m = 0; m < mc_.samples; ++m) streams_.push_back(rng.fork());
}

bool RolloutWave::accumulate(const SessionResult& session) {
  return fold_rollout(mc_, max_segments_, best_known_exit_rate_, session, result_);
}

void RolloutWave::start_chunk() {
  const std::size_t batch = std::max<std::size_t>(1, mc_.batch_size);
  const std::size_t wave = std::min(batch, mc_.samples - chunk_first_);
  slots_ = std::vector<Slot>(wave);
  for (std::size_t j = 0; j < wave; ++j) {
    Slot& slot = slots_[j];
    slot.abr = abr_.clone();
    slot.bw = bandwidth_.clone();
    slot.model = exits_.make_model();
    slot.model->begin_session();
    slot.stepper.emplace(sim_, video_, *slot.abr, *slot.bw, streams_[chunk_first_ + j]);
  }
  accumulated_ = 0;
}

void RolloutWave::finish() {
  result_.exit_rate = result_.watched_count == 0
                          ? 0.0
                          : static_cast<double>(result_.exited_count) /
                                static_cast<double>(result_.watched_count);
  slots_.clear();
  finished_ = true;
}

bool RolloutWave::step() {
  if (finished_) return true;
  if (needs_flush_) {
    // The parked probabilities are available now (either exits_ computes
    // them in flush(), or the pool it parks into was flushed by the caller);
    // deliver them in park order and resume the parked rollouts.
    probs_.resize(parked_.size());
    const std::size_t flushed = exits_.flush(probs_.data());
    LINGXI_ASSERT(flushed == parked_.size());
    for (std::size_t i = 0; i < parked_.size(); ++i) {
      slots_[parked_[i]].stepper->resolve(probs_[i]);
    }
    needs_flush_ = false;
  }

  for (;;) {
    if (slots_.empty()) {
      if (chunk_first_ >= mc_.samples) {
        finish();
        return true;
      }
      start_chunk();
    }

    // Run the chunk: each live rollout advances until it either finishes or
    // parks an expensive exit query (a stalled segment needing the net);
    // cheap queries resolve inline. Rollouts desynchronize freely — each
    // owns its rng, abr, bandwidth and model, so interleaving cannot change
    // any rollout's byte-for-byte outcome.
    //
    // Completed rollouts fold into the result in rollout order as soon as
    // the prefix allows, so a prune fires at exactly the rollout it would
    // under the sequential path — the in-flight tail is then abandoned, just
    // as the sequential path never starts it.
    parked_.clear();
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      Slot& slot = slots_[j];
      if (slot.done) continue;
      for (;;) {
        const SegmentRecord* seg = slot.stepper->advance();
        if (seg == nullptr) {
          slot.done = true;
          slot.session = slot.stepper->take_result();
          break;
        }
        double p = 0.0;
        if (!exits_.prepare(*slot.model, *seg, p)) {
          parked_.push_back(j);
          break;
        }
        slot.stepper->resolve(p);
      }
    }
    bool stop = false;
    while (accumulated_ < slots_.size() && slots_[accumulated_].done) {
      if (accumulate(slots_[accumulated_].session)) {
        stop = true;
        break;
      }
      ++accumulated_;
    }
    if (stop) {
      exits_.discard_parked();
      finish();
      return true;
    }
    if (!parked_.empty()) {
      needs_flush_ = true;
      return false;
    }
    // Chunk complete (all rollouts done and folded): move to the next one.
    chunk_first_ += slots_.size();
    slots_.clear();
  }
}

MonteCarloResult RolloutWave::take_result() {
  LINGXI_ASSERT(finished_);
  return result_;
}

}  // namespace lingxi::sim
