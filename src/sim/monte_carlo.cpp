#include "sim/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/assert.h"

namespace lingxi::sim {

MonteCarloEvaluator::MonteCarloEvaluator(MonteCarloConfig mc_config,
                                         SessionSimulator::Config session_config)
    : mc_config_(mc_config), session_config_(session_config) {
  LINGXI_ASSERT(mc_config_.samples > 0);
  LINGXI_ASSERT(mc_config_.sample_duration > 0.0);
}

trace::Video MonteCarloEvaluator::make_virtual_video(const trace::BitrateLadder& ladder,
                                                     Seconds segment_duration, Rng* rng,
                                                     double vbr_sigma) const {
  const auto segments = static_cast<std::size_t>(
      std::max(1.0, std::ceil(mc_config_.sample_duration / segment_duration)));
  if (rng != nullptr && vbr_sigma > 0.0) {
    return trace::Video::vbr(ladder, segments, segment_duration, vbr_sigma, *rng);
  }
  return trace::Video{ladder, segments, segment_duration};
}

MonteCarloResult MonteCarloEvaluator::evaluate(const trace::Video& virtual_video,
                                               BitrateSelector& abr, ExitModel& exit_model,
                                               trace::BandwidthModel& bandwidth,
                                               Seconds initial_buffer,
                                               double best_known_exit_rate, Rng& rng) const {
  SessionSimulator::Config cfg = session_config_;
  cfg.player.startup_buffer = std::max(0.0, initial_buffer);
  const SessionSimulator sim(cfg);

  MonteCarloResult result;
  const std::size_t max_segments_per_sample = virtual_video.segment_count();

  for (std::size_t m = 0; m < mc_config_.samples; ++m) {
    auto bw = bandwidth.clone();  // independent stochastic rollout
    const SessionResult session = sim.run(virtual_video, abr, *bw, &exit_model, rng);
    result.watched_count += session.segments.size();
    if (session.exited) ++result.exited_count;
    ++result.samples_run;

    if (mc_config_.enable_pruning && result.samples_run >= mc_config_.min_samples_before_prune &&
        std::isfinite(best_known_exit_rate)) {
      // Optimistic bound: every remaining sample watches the full virtual
      // video and never exits.
      const std::size_t remaining = mc_config_.samples - result.samples_run;
      const double optimistic_watched = static_cast<double>(
          result.watched_count + remaining * max_segments_per_sample);
      const double lower_bound = static_cast<double>(result.exited_count) / optimistic_watched;
      if (lower_bound > best_known_exit_rate) {
        result.pruned = true;
        break;
      }
    }
  }

  result.exit_rate = result.watched_count == 0
                         ? 0.0
                         : static_cast<double>(result.exited_count) /
                               static_cast<double>(result.watched_count);
  return result;
}

MonteCarloResult MonteCarloEvaluator::evaluate_rollouts(
    const trace::Video& virtual_video, const abr::AbrAlgorithm& abr,
    const BatchExitEvaluator& exits, const trace::BandwidthModel& bandwidth,
    Seconds initial_buffer, double best_known_exit_rate, Rng& rng) const {
  SessionSimulator::Config cfg = session_config_;
  cfg.player.startup_buffer = std::max(0.0, initial_buffer);
  const SessionSimulator sim(cfg);

  // Per-rollout rng streams, forked upfront so the caller's rng advances by
  // exactly `samples` forks no matter how pruning truncates the run — the
  // caller's subsequent draws (e.g. the next OBO candidate) must not depend
  // on the batch size or the prune point.
  std::vector<Rng> streams;
  streams.reserve(mc_config_.samples);
  for (std::size_t m = 0; m < mc_config_.samples; ++m) streams.push_back(rng.fork());

  MonteCarloResult result;
  const std::size_t max_segments_per_sample = virtual_video.segment_count();

  // Scalar accumulation + pruning, applied to completed rollouts in rollout
  // order by both modes. Returns true when evaluation must stop.
  const auto accumulate = [&](const SessionResult& session) {
    result.watched_count += session.segments.size();
    if (session.exited) ++result.exited_count;
    ++result.samples_run;
    if (mc_config_.enable_pruning &&
        result.samples_run >= mc_config_.min_samples_before_prune &&
        std::isfinite(best_known_exit_rate)) {
      const std::size_t remaining = mc_config_.samples - result.samples_run;
      const double optimistic_watched = static_cast<double>(
          result.watched_count + remaining * max_segments_per_sample);
      const double lower_bound =
          static_cast<double>(result.exited_count) / optimistic_watched;
      if (lower_bound > best_known_exit_rate) {
        result.pruned = true;
        return true;
      }
    }
    return false;
  };

  const std::size_t batch = std::max<std::size_t>(1, mc_config_.batch_size);
  if (batch <= 1) {
    for (std::size_t m = 0; m < mc_config_.samples; ++m) {
      const auto rollout_abr = abr.clone();
      const auto bw = bandwidth.clone();
      const auto model = exits.make_model();
      const SessionResult session =
          sim.run(virtual_video, *rollout_abr, *bw, model.get(), streams[m]);
      if (accumulate(session)) break;
    }
  } else {
    struct Slot {
      std::unique_ptr<abr::AbrAlgorithm> abr;
      std::unique_ptr<trace::BandwidthModel> bw;
      std::unique_ptr<ExitModel> model;
      std::optional<SessionStepper> stepper;
      SessionResult session;
      bool done = false;
    };
    std::vector<std::size_t> parked;  // slot index per parked query, in park order
    std::vector<double> probs;

    bool stop = false;
    for (std::size_t m0 = 0; m0 < mc_config_.samples && !stop; m0 += batch) {
      const std::size_t wave = std::min(batch, mc_config_.samples - m0);
      std::vector<Slot> slots(wave);
      for (std::size_t j = 0; j < wave; ++j) {
        Slot& slot = slots[j];
        slot.abr = abr.clone();
        slot.bw = bandwidth.clone();
        slot.model = exits.make_model();
        slot.model->begin_session();
        slot.stepper.emplace(sim, virtual_video, *slot.abr, *slot.bw, streams[m0 + j]);
      }

      // Run the wave: each live rollout advances until it either finishes or
      // parks an expensive exit query (a stalled segment needing the net);
      // cheap queries resolve inline. One flush then evaluates all parked
      // queries as a single batched forward. Rollouts desynchronize freely —
      // each owns its rng, abr, bandwidth and model, so interleaving cannot
      // change any rollout's byte-for-byte outcome.
      //
      // Completed rollouts fold into the result in rollout order as soon as
      // the prefix allows, so a prune fires at exactly the rollout it would
      // under the scalar path — the in-flight tail is then abandoned, just
      // as the scalar path never starts it.
      std::size_t accumulated = 0;  // slots [0, accumulated) folded in
      for (;;) {
        parked.clear();
        for (std::size_t j = 0; j < wave; ++j) {
          Slot& slot = slots[j];
          if (slot.done) continue;
          for (;;) {
            const SegmentRecord* seg = slot.stepper->advance();
            if (seg == nullptr) {
              slot.done = true;
              slot.session = slot.stepper->take_result();
              break;
            }
            double p = 0.0;
            if (!exits.prepare(*slot.model, *seg, p)) {
              parked.push_back(j);
              break;
            }
            slot.stepper->resolve(p);
          }
        }
        while (accumulated < wave && slots[accumulated].done) {
          if (accumulate(slots[accumulated].session)) {
            stop = true;
            break;
          }
          ++accumulated;
        }
        if (stop) {
          exits.discard_parked();
          break;
        }
        if (parked.empty()) break;
        probs.resize(parked.size());
        const std::size_t flushed = exits.flush(probs.data());
        LINGXI_ASSERT(flushed == parked.size());
        for (std::size_t i = 0; i < parked.size(); ++i) {
          slots[parked[i]].stepper->resolve(probs[i]);
        }
      }
    }
  }

  result.exit_rate = result.watched_count == 0
                         ? 0.0
                         : static_cast<double>(result.exited_count) /
                               static_cast<double>(result.watched_count);
  return result;
}

}  // namespace lingxi::sim
