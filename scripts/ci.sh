#!/usr/bin/env bash
# Configure, build and test — the tier-1 verify, as run by CI — followed by a
# small telemetry capture->replay round-trip smoke (Fig. 12 A/B on 64 users):
# the bench simulates both arms once, archives them, recomputes the DiD
# series from the archives, and exits non-zero unless the replayed
# accumulators bitwise-match the live runs. The archives and the bench JSON
# land in ${BUILD_DIR}/smoke/ so CI can upload them as workflow artifacts.
#
# Usage: scripts/ci.sh [Debug|Release]   (default Release)
set -euo pipefail

BUILD_TYPE="${1:-Release}"
ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${ROOT}/build-ci-${BUILD_TYPE,,}"

cmake -B "${BUILD_DIR}" -S "${ROOT}" -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

SMOKE_DIR="${BUILD_DIR}/smoke"
rm -rf "${SMOKE_DIR}"
mkdir -p "${SMOKE_DIR}"
"${BUILD_DIR}/bench/bench_fig12_ab_test" \
  --users 64 --days 4 \
  --archive-dir "${SMOKE_DIR}/fig12-archives" \
  --json "${SMOKE_DIR}/fig12.json"
echo "capture->replay smoke OK: $(ls "${SMOKE_DIR}/fig12-archives")"
