#!/usr/bin/env bash
# Configure, build and test — the tier-1 verify, as run by CI.
#
# Usage: scripts/ci.sh [Debug|Release]   (default Release)
set -euo pipefail

BUILD_TYPE="${1:-Release}"
ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${ROOT}/build-ci-${BUILD_TYPE,,}"

cmake -B "${BUILD_DIR}" -S "${ROOT}" -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
