#!/usr/bin/env bash
# Configure, build and test — the tier-1 verify, as run by CI — followed by:
#   * the CTest label matrix: the `nn` label (batched-inference parity layer)
#     and the `fleet` label (FleetRunner substrate + experiment drivers) are
#     re-run explicitly, so a label regression fails loudly on every push;
#     the `bayesopt` label pins the optimizer fast path (incremental
#     Cholesky == full refit, batched-acquisition parity), and the nn suite
#     re-runs under LINGXI_DENSE_ISA=scalar/sse2/avx2/avx512 so every
#     dispatchable dense kernel proves bitwise parity on the CI host;
#     finally the fleet_scaling smoke JSON is gated on non-regressing
#     sessions/sec ratios (batched vs scalar, cohort vs per-opt);
#   * the batched-path + cross-user wave smoke: bench_fleet_scaling
#     --batch 64 --users-per-shard 3 runs the LingXi fleet with scalar,
#     per-optimization batched AND cross-user cohort-scheduled predictor
#     inference at several thread counts, and exits non-zero unless every
#     FleetAccumulator checksum is bitwise identical — the scalar/batched
#     parity contract extended across scheduler modes. The machine-readable
#     summary (rates, occupancy, checksums) lands in
#     ${BUILD_DIR}/smoke/fleet_scaling.json for the artifact upload;
#   * a telemetry capture->replay round-trip smoke (Fig. 12 A/B on 64
#     users): simulate both arms once, archive them, recompute the DiD
#     series from the archives, and exit non-zero unless the replayed
#     accumulators bitwise-match the live runs. The archives and the bench
#     JSON land in ${BUILD_DIR}/smoke/ so CI uploads them as artifacts;
#   * a snapshot->resume smoke (bench_warm_start on a fig12-shaped fleet,
#     D=2 resume K=2): simulate 4 days in one go, then snapshot at day 2 and
#     resume from disk — exits non-zero unless the resumed FleetAccumulator
#     checksum AND the telemetry archive bytes bitwise-match the full run.
#     The snapshot directory and the JSON summary land in
#     ${BUILD_DIR}/smoke/ for the artifact upload;
#   * a crash-recovery smoke (bench_crash_recovery): run the checkpointing
#     fleet and SIGKILL it from inside the snapshot commit protocol, then
#     recover via snapshot::find_latest_valid in a fresh process and resume
#     to the horizon — non-zero exit unless the resumed FleetAccumulator
#     checksum AND archive checksum bitwise-match an uninterrupted reference
#     run. The checkpoint root and JSON summaries land in ${BUILD_DIR}/smoke/;
#   * a scenario smoke (bench_scenarios --smoke): the canonical "CDN
#     brownout + flash crowd + churn" script on an A/B fleet — empty-script
#     byte parity, scenario-on grid determinism, a SIGKILLed checkpoint leg
#     resumed through the churn day (all bitwise-verified, non-zero exit on
#     any mismatch) and the per-event DiD / per-cohort analytics report;
#   * observability smokes: the fig12 run above also dumps the obs metrics
#     registry (--metrics-json) and a Chrome trace (--trace-out), validated
#     here with python3 — both files must parse as JSON and the trace must
#     contain wave.flush, obo.refit and checkpoint.commit spans; and in
#     Release builds bench_obs_overhead gates the obs fast path, exiting
#     non-zero if enabling the full health plane costs more than 3% in
#     sessions per CPU-second (best-of-N per arm, alternating off/on pairs);
#   * the health timeline + SLO watchdog smoke: the scenario run keeps a
#     per-day health timeline under a quiet floor SLO (exit 0 required),
#     bench_health_report summarizes it into a schema-validated JSON report
#     (day records present, deterministic section intact, zero alerts), and
#     a second run under a must-fire ceiling SLO has to exit with code 3;
#   * the bench_compare perf-regression gate (Release): dimensionless ratio
#     checks from the fleet_scaling smoke JSON against the committed
#     bench/baseline.json, plus a synthetic halved-throughput summary that
#     must be caught with a non-zero exit.
#
# Usage: scripts/ci.sh [Debug|Release]   (default Release)
set -euo pipefail

BUILD_TYPE="${1:-Release}"
ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${ROOT}/build-ci-${BUILD_TYPE,,}"

cmake -B "${BUILD_DIR}" -S "${ROOT}" -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# CTest label matrix (cheap re-runs). --no-tests=error is what actually
# catches label wiring drift: a label matching zero tests would otherwise
# exit 0 and silently disable the gate.
for label in nn fleet snapshot obs scenario bayesopt; do
  ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error -L "${label}"
done

# Forced-ISA parity sweep: the dense-kernel dispatch (nn::dense_isa) honours
# LINGXI_DENSE_ISA, so the nn parity suite re-runs pinned to each variant
# (requests wider than the hardware clamp down — redundant but still a valid
# scalar-parity run, never a skip).
for isa in scalar sse2 avx2 avx512; do
  LINGXI_DENSE_ISA="${isa}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error -L nn
  echo "forced-ISA parity OK: ${isa}"
done

SMOKE_DIR="${BUILD_DIR}/smoke"
rm -rf "${SMOKE_DIR}"
mkdir -p "${SMOKE_DIR}"

# Batched-inference + cross-user wave parity smoke (small fleet, batch 64,
# shard 3, pooled optimizer fits on 2 workers; non-zero exit on any checksum
# mismatch between thread counts, batch modes or scheduler modes).
#
# The wall-clock sessions/sec gates on the summary can be blanketed by a
# host-side steal burst on virtualized single-core runners (one observed
# burst read the batched arm at 0.57x scalar where steady state is ~2x), so
# an over-gate measurement is re-taken from scratch up to 3 attempts —
# checksum mismatches fail immediately (they are deterministic, retrying
# cannot fix them), and a genuine perf regression fails every attempt.
FLEET_GATE_OK=0
for FLEET_ATTEMPT in 1 2 3; do
  "${BUILD_DIR}/bench/bench_fleet_scaling" --batch 64 --users-per-shard 3 --smoke \
    --opt-threads 2 \
    --json "${SMOKE_DIR}/fleet_scaling.json" \
    | tee "${SMOKE_DIR}/fleet_scaling.txt"
  echo "batched-path + cross-user wave smoke OK (attempt ${FLEET_ATTEMPT})"

  # Sessions/sec non-regression gate on the smoke summary: the optimizer fast
  # path must keep the batched arm comfortably ahead of scalar inference and
  # the cohort scheduler from regressing against per-optimization batching.
  # Thresholds sit far below steady-state measurements (batched/scalar ~2.5x,
  # cross/per-opt ~1.2x) so only a real regression or a steal burst trips them.
  set +e
  python3 - "${SMOKE_DIR}/fleet_scaling.json" <<'PYEOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert summary["all_checksums_match"] is True, "smoke checksum mismatch"
scalar = summary["scalar_sessions_per_sec"]
batched = summary["batched_sessions_per_sec"]
per_opt = summary["cross_user"]["per_opt_sessions_per_sec"]
cross = summary["cross_user"]["cross_user_sessions_per_sec"]
assert batched >= 1.2 * scalar, f"batched/scalar regressed: {batched:.0f} vs {scalar:.0f}"
assert cross >= 0.9 * per_opt, f"cross-user regressed: {cross:.0f} vs {per_opt:.0f}"
print(f"sessions/sec gate OK: batched/scalar {batched / scalar:.2f}x, "
      f"cross/per-opt {cross / per_opt:.2f}x (isa {summary['dense_isa']}, "
      f"opt-threads {summary['optimizer_threads']})")
PYEOF
  FLEET_GATE_RC=$?
  set -e
  # Determinism failures never retry: the checksum field is bitwise.
  python3 -c 'import json,sys; sys.exit(0 if json.load(open(sys.argv[1]))["all_checksums_match"] else 1)' \
    "${SMOKE_DIR}/fleet_scaling.json"
  if [ "${FLEET_GATE_RC}" -eq 0 ]; then
    FLEET_GATE_OK=1
    break
  fi
  echo "sessions/sec gate over threshold on attempt ${FLEET_ATTEMPT}; re-measuring"
done
if [ "${FLEET_GATE_OK}" -ne 1 ]; then
  echo "sessions/sec gate FAILED on all attempts" >&2
  exit 1
fi

"${BUILD_DIR}/bench/bench_fig12_ab_test" \
  --users 64 --days 4 \
  --archive-dir "${SMOKE_DIR}/fig12-archives" \
  --json "${SMOKE_DIR}/fig12.json" \
  --metrics-json "${SMOKE_DIR}/fig12_metrics.json" \
  --trace-out "${SMOKE_DIR}/fig12_trace.json"
echo "capture->replay smoke OK: $(ls "${SMOKE_DIR}/fig12-archives")"

# Observability output validation: the metrics dump and the Chrome trace must
# both be well-formed JSON, and the trace must cover the three span families
# the layer instruments end to end (shard wave flushes, Bayesian-optimizer
# refits, snapshot checkpoint commits).
python3 - "${SMOKE_DIR}/fig12_metrics.json" "${SMOKE_DIR}/fig12_trace.json" <<'PYEOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
assert metrics["schema"] == "lingxi.obs.metrics/v1", metrics.get("schema")
assert metrics["metrics"], "metrics dump is empty"
trace = json.load(open(sys.argv[2]))
names = {event["name"] for event in trace["traceEvents"]}
missing = {"wave.flush", "obo.refit", "checkpoint.commit"} - names
assert not missing, f"trace missing spans: {sorted(missing)}"
print(f"obs smoke OK: {len(metrics['metrics'])} metrics, "
      f"{len(trace['traceEvents'])} trace events, spans {sorted(names)}")
PYEOF

# Snapshot->resume smoke: fig12-shaped fleet, snapshot at day 2, resume for
# 2 more days; non-zero exit unless the resumed checksum and archive bytes
# bitwise-match the uninterrupted run. Snapshot + JSON become CI artifacts.
"${BUILD_DIR}/bench/bench_warm_start" --smoke --days 4 --resume-at 2 \
  --dir "${SMOKE_DIR}/warm-start-snapshot" \
  --json "${SMOKE_DIR}/warm_start.json" \
  | tee "${SMOKE_DIR}/warm_start.txt"
echo "snapshot->resume smoke OK: $(ls "${SMOKE_DIR}/warm-start-snapshot")"

# Crash-recovery smoke: reference run -> checkpointing run killed (-9, raised
# from inside the commit protocol) -> recover + resume in a fresh process,
# asserting bitwise parity against the reference.
"${BUILD_DIR}/bench/bench_crash_recovery" --reference --smoke --days 4 \
  --json "${SMOKE_DIR}/crash_reference.json" \
  | tee "${SMOKE_DIR}/crash_recovery.txt"
REF_CHECKSUM="$(sed -n 's/.*"checksum": "\(0x[0-9a-f]*\)".*/\1/p' "${SMOKE_DIR}/crash_reference.json")"
REF_ARCHIVE="$(sed -n 's/.*"archive_checksum": "\(0x[0-9a-f]*\)".*/\1/p' "${SMOKE_DIR}/crash_reference.json")"
set +e
"${BUILD_DIR}/bench/bench_crash_recovery" --run --smoke --days 4 --every 1 \
  --root "${SMOKE_DIR}/crash-checkpoints" \
  --kill-at-checkpoint 2 --kill-during-commit durable \
  2>&1 | tee -a "${SMOKE_DIR}/crash_recovery.txt"
RUN_RC="${PIPESTATUS[0]}"
set -e
if [ "${RUN_RC}" -eq 0 ]; then
  echo "crash-recovery smoke BROKEN: the armed SIGKILL never fired" >&2
  exit 1
fi
"${BUILD_DIR}/bench/bench_crash_recovery" --resume --smoke --days 4 \
  --root "${SMOKE_DIR}/crash-checkpoints" \
  --expect-checksum "${REF_CHECKSUM}" \
  --expect-archive-checksum "${REF_ARCHIVE}" \
  --json "${SMOKE_DIR}/crash_resume.json" \
  | tee -a "${SMOKE_DIR}/crash_recovery.txt"
echo "crash-recovery smoke OK: killed at checkpoint 2 (commit stage durable)," \
  "resumed bitwise-identical (${REF_CHECKSUM} / ${REF_ARCHIVE})"

# Scenario smoke: the canonical "CDN brownout + flash crowd + churn" script
# end to end on an A/B fleet — empty-script byte parity, scenario-on grid
# determinism, a SIGKILLed checkpoint leg resumed through the churn day (all
# bitwise, non-zero exit on any mismatch) and the DiD/cohort analytics
# report. JSON summary, metrics dump and the scripted archive land in
# ${SMOKE_DIR}/ for the artifact upload.
"${BUILD_DIR}/bench/bench_scenarios" --smoke \
  --root "${SMOKE_DIR}/scenario-checkpoints" \
  --archive-dir "${SMOKE_DIR}/scenario-archive" \
  --json "${SMOKE_DIR}/scenarios.json" \
  --metrics-json "${SMOKE_DIR}/scenarios_metrics.json" \
  --timeline-out "${SMOKE_DIR}/scenarios_timeline.bin" \
  --slo "floor:sim.fleet.sessions_total:1:sessions-floor" \
  | tee "${SMOKE_DIR}/scenarios.txt"
echo "scenario smoke OK: $(ls "${SMOKE_DIR}/scenario-archive")"

# Health timeline + SLO watchdog smoke. The scenario run above kept a per-day
# timeline under a floor SLO that a healthy fleet can never trip — its rc 0
# already proves the quiet path. Summarize the timeline with the reporting
# CLI (rc 0 = no alerts on board), validate the JSON report with python3, and
# keep both as CI artifacts.
"${BUILD_DIR}/bench/bench_health_report" \
  --timeline "${SMOKE_DIR}/scenarios_timeline.bin" \
  --json "${SMOKE_DIR}/health_report.json" \
  | tee "${SMOKE_DIR}/health_report.txt"
python3 - "${SMOKE_DIR}/health_report.json" <<'PYEOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "lingxi.obs.health_report/v1", report.get("schema")
assert report["day_records"] > 0, "timeline recorded no fleet days"
det = [m["name"] for m in report["metrics"] if m["deterministic"]]
assert "sim.fleet.sessions_total" in det, f"deterministic section lost: {det}"
assert report["alerts"] == [], f"quiet SLO fired: {report['alerts']}"
print(f"health timeline smoke OK: {report['day_records']} day records, "
      f"{len(report['metrics'])} metric series, {len(det)} deterministic")
PYEOF

# The watchdog must also FIRE: re-run the scenario smoke under a ceiling of 1
# session (violated on day one of any run) and require exit code 3 — the
# SLO-violation code, distinct from parity failures (1) and usage errors (2).
set +e
"${BUILD_DIR}/bench/bench_scenarios" --smoke \
  --root "${SMOKE_DIR}/scenario-checkpoints-slo" \
  --archive-dir "${SMOKE_DIR}/scenario-archive-slo" \
  --timeline-out "${SMOKE_DIR}/scenarios_timeline_fired.bin" \
  --slo "ceiling:sim.fleet.sessions_total:1:sessions-ceiling" \
  > "${SMOKE_DIR}/scenarios_slo_fired.txt" 2>&1
SLO_RC=$?
set -e
if [ "${SLO_RC}" -ne 3 ]; then
  echo "SLO watchdog BROKEN: must-fire rule exited ${SLO_RC}, want 3" >&2
  exit 1
fi
echo "SLO watchdog smoke OK: must-fire ceiling exited 3"

# Obs fast-path regression gate (Release only: Debug timings say nothing
# about the optimized cost of the disabled-path branch or the record path).
# Non-zero exit when the best-of-N overhead exceeds 3%.
if [ "${BUILD_TYPE}" = "Release" ]; then
  "${BUILD_DIR}/bench/bench_obs_overhead" --smoke --reps 5 --threshold 3.0 \
    --json "${SMOKE_DIR}/obs_overhead.json" \
    | tee "${SMOKE_DIR}/obs_overhead.txt"
  echo "obs overhead gate OK"

  # Perf-regression gate against the committed baseline (Release only: the
  # committed ratios were measured on optimized builds). The checks are
  # dimensionless ratios of quantities measured in the same process, so they
  # transfer across machines; floors sit far below steady state so only a
  # real regression trips them. Then prove the gate has teeth: a synthetic
  # halved-throughput summary must exit non-zero.
  "${BUILD_DIR}/bench/bench_compare" --baseline "${ROOT}/bench/baseline.json" \
    --input "fleet_scaling=${SMOKE_DIR}/fleet_scaling.json" \
    | tee "${SMOKE_DIR}/bench_compare.txt"
  python3 - "${SMOKE_DIR}/fleet_scaling.json" "${SMOKE_DIR}/fleet_scaling_regressed.json" <<'PYEOF'
import json, sys
summary = json.load(open(sys.argv[1]))
summary["batched_sessions_per_sec"] = summary["scalar_sessions_per_sec"] * 0.5
summary["cross_user"]["speedup"] = 0.4
json.dump(summary, open(sys.argv[2], "w"))
PYEOF
  set +e
  "${BUILD_DIR}/bench/bench_compare" --baseline "${ROOT}/bench/baseline.json" \
    --input "fleet_scaling=${SMOKE_DIR}/fleet_scaling_regressed.json" \
    >> "${SMOKE_DIR}/bench_compare.txt" 2>&1
  COMPARE_RC=$?
  set -e
  if [ "${COMPARE_RC}" -ne 1 ]; then
    echo "bench_compare gate BROKEN: synthetic regression exited ${COMPARE_RC}, want 1" >&2
    exit 1
  fi
  echo "bench_compare gate OK: baseline within tolerance, synthetic regression caught"
fi
