// Train the hybrid exit-rate predictor end to end (§3.3):
//   1. generate a synthetic stall-event log from the user population,
//   2. balance classes and split 80:20 (stratified),
//   3. train the 5-branch 1D-CNN with Adam + cross-entropy,
//   4. report accuracy / precision / recall / F1, and
//   5. checkpoint the weights to disk and reload them.
#include <cstdio>

#include "common/rng.h"
#include "nn/serialize.h"
#include "predictor/dataset.h"
#include "predictor/exit_net.h"

int main() {
  using namespace lingxi;
  Rng rng(42);

  std::printf("generating synthetic stall log...\n");
  predictor::DatasetGenConfig gen;
  gen.users = 40;
  gen.sessions_per_user = 25;
  gen.filter = predictor::DatasetFilter::kStall;
  const auto dataset = predictor::generate_dataset(gen, rng);
  std::printf("  %zu stall samples (%zu exits, %zu continues)\n", dataset.size(),
              dataset.positives(), dataset.negatives());

  const auto balanced = predictor::balance(dataset, rng);
  std::printf("  balanced to %zu samples\n", balanced.size());
  const auto split = predictor::stratified_split(balanced, 0.8, rng);

  predictor::StallExitNet net(rng);
  predictor::TrainConfig config;
  config.epochs = 10;
  std::printf("training (%zu epochs)...\n", config.epochs);
  const double loss = predictor::train_exit_net(net, split.train, config, rng);
  std::printf("  final epoch mean loss: %.4f\n", loss);

  const auto metrics = predictor::evaluate(net, split.test);
  std::printf("test metrics: acc=%.3f prec=%.3f recall=%.3f f1=%.3f\n", metrics.accuracy,
              metrics.precision, metrics.recall, metrics.f1);

  const std::string path = "exit_net.lxnn";
  if (nn::save_tensors(path, net.weights()).ok()) {
    std::printf("checkpoint written to %s\n", path.c_str());
    const auto loaded = nn::load_tensors(path);
    Rng rng2(1);
    predictor::StallExitNet restored(rng2);
    if (loaded && restored.load_weights(*loaded)) {
      const auto again = predictor::evaluate(restored, split.test);
      std::printf("reloaded checkpoint test accuracy: %.3f (matches: %s)\n",
                  again.accuracy, again.accuracy == metrics.accuracy ? "yes" : "no");
    }
  }
  return 0;
}
