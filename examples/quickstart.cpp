// Quickstart: one user streams one video through HYB; a stall-heavy network
// triggers LingXi, which re-optimizes HYB's beta for this user.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "abr/hyb.h"
#include "common/rng.h"
#include "core/lingxi.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"
#include "sim/session.h"
#include "trace/bandwidth.h"
#include "trace/video.h"

int main() {
  using namespace lingxi;
  Rng rng(2024);

  // 1. A 60-segment short video on the default LD/SD/HD/FullHD ladder.
  const trace::Video video(trace::BitrateLadder::default_ladder(), 60, 1.0);

  // 2. A congested network: 900 kbps mean, bursty.
  trace::GaussMarkovBandwidth bandwidth({.mean = 900.0, .rho = 0.9, .noise_sd = 250.0});

  // 3. The serving ABR (HYB) with the production-default beta.
  abr::Hyb hyb;
  std::printf("initial params: %s\n", hyb.params().to_string().c_str());

  // 4. LingXi with an (untrained, for brevity) hybrid exit predictor.
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  auto os_model = std::make_shared<predictor::OverallStatsModel>();
  core::LingXiConfig config;
  config.space.optimize_stall = false;
  config.space.optimize_switch = false;
  config.space.optimize_beta = true;  // HYB integration tunes beta
  const predictor::HybridExitPredictor predictor(net, os_model);
  core::LingXi lingxi(config, predictor, video.ladder());

  // 5. Play the video; feed every segment to LingXi.
  const sim::SessionSimulator simulator({});
  lingxi.begin_session();
  const sim::SessionResult session = simulator.run(video, hyb, bandwidth, nullptr, rng);
  for (const auto& seg : session.segments) lingxi.on_segment(seg);
  lingxi.end_session(/*exited_during_stall=*/false);

  std::printf("session: %zu segments, %.1fs watched, %.2fs stalled (%zu events), "
              "mean bitrate %.0f kbps\n",
              session.segments.size(), session.watch_time, session.total_stall,
              session.stall_events, session.mean_bitrate);

  // 6. Enough stalls accumulated? Run one optimization round.
  if (lingxi.should_optimize()) {
    const Seconds buffer = session.segments.back().buffer_after;
    if (const auto params = lingxi.maybe_optimize(hyb, buffer, rng)) {
      std::printf("LingXi optimized params: %s\n", params->to_string().c_str());
    }
  } else {
    std::printf("not enough stall events to trigger LingXi (threshold %zu)\n",
                config.trigger_stall_threshold);
  }

  const auto& stats = lingxi.stats();
  std::printf("stats: triggers=%llu optimizations=%llu mc_evals=%llu\n",
              static_cast<unsigned long long>(stats.triggers),
              static_cast<unsigned long long>(stats.optimizations_run),
              static_cast<unsigned long long>(stats.mc_evaluations));
  return 0;
}
