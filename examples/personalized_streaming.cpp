// Personalized streaming: two users with opposite stall sensitivity share the
// same network; LingXi drives their HYB beta parameters apart (§5.5).
//
// The stall-sensitive user exits quickly after stalls, so LingXi learns a
// conservative (low) beta; the tolerant user keeps watching, so LingXi can
// afford an aggressive (high) beta to maximize bitrate.
#include <cstdio>
#include <memory>

#include "abr/hyb.h"
#include "common/rng.h"
#include "core/lingxi.h"
#include "predictor/dataset.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"
#include "sim/session.h"
#include "trace/population.h"
#include "user/data_driven.h"

namespace {

using namespace lingxi;

struct SimulatedUser {
  const char* label;
  user::DataDrivenUser::Config behaviour;
  abr::Hyb abr;
  std::unique_ptr<core::LingXi> lingxi;
  double total_stall = 0.0;
  std::size_t stall_exits = 0;
  std::size_t sessions = 0;
};

}  // namespace

int main() {
  Rng rng(7);

  // A shared, stall-prone network profile (≈1.2 Mbps).
  trace::NetworkProfile profile;
  profile.mean_bandwidth = 1200.0;
  profile.relative_sd = 0.4;

  // Train a quick predictor substrate: OS model from a synthetic log.
  auto os_model = std::make_shared<predictor::OverallStatsModel>();
  {
    predictor::DatasetGenConfig gen;
    gen.users = 15;
    gen.sessions_per_user = 10;
    gen.filter = predictor::DatasetFilter::kAll;
    Rng gen_rng(11);
    const auto data = predictor::generate_dataset(gen, gen_rng);
    for (const auto& s : data.samples) {
      os_model->observe(1, predictor::SwitchType::kNone, s.exited);
    }
  }
  auto net = std::make_shared<predictor::StallExitNet>(rng);

  core::LingXiConfig config;
  config.space.optimize_beta = true;
  config.space.optimize_stall = false;
  config.space.optimize_switch = false;
  config.obo_rounds = 6;
  config.monte_carlo.samples = 16;

  user::DataDrivenUser::Config sensitive;
  sensitive.stall_archetype = user::StallArchetype::kSensitive;
  sensitive.tolerance = 1.0;

  user::DataDrivenUser::Config tolerant;
  tolerant.stall_archetype = user::StallArchetype::kInsensitive;
  tolerant.tolerance = 15.0;

  SimulatedUser users[2] = {{"stall-sensitive", sensitive, {}, nullptr},
                            {"stall-tolerant ", tolerant, {}, nullptr}};
  const auto ladder = trace::BitrateLadder::default_ladder();
  // Both users borrow one predictor (LingXi never mutates it); it must
  // outlive them.
  const predictor::HybridExitPredictor shared_predictor(net, os_model);
  for (auto& u : users) {
    u.lingxi = std::make_unique<core::LingXi>(config, shared_predictor, ladder);
  }

  const sim::SessionSimulator simulator({});
  const trace::VideoGenerator videos({});

  std::printf("%-16s %-8s %-10s %-12s %-10s\n", "user", "session", "beta",
              "stall(s)", "exited");
  for (int s = 0; s < 25; ++s) {
    const trace::Video video = videos.sample(rng);
    for (auto& u : users) {
      auto bw = profile.make_session_model();
      user::DataDrivenUser model(u.behaviour);
      u.lingxi->begin_session();
      const auto session = simulator.run(video, u.abr, *bw, &model, rng);
      for (const auto& seg : session.segments) u.lingxi->on_segment(seg);
      const bool stall_exit =
          session.exited && !session.segments.empty() &&
          session.segments.back().stall_time > 0.05;
      u.lingxi->end_session(stall_exit);
      u.total_stall += session.total_stall;
      u.stall_exits += stall_exit ? 1 : 0;
      ++u.sessions;

      const Seconds buffer =
          session.segments.empty() ? 0.0 : session.segments.back().buffer_after;
      u.lingxi->maybe_optimize(u.abr, buffer, rng);

      if (s % 5 == 4) {
        std::printf("%-16s %-8d %-10.3f %-12.2f %-10s\n", u.label, s + 1,
                    u.abr.params().hyb_beta, session.total_stall,
                    session.exited ? "yes" : "no");
      }
    }
  }

  std::printf("\nsummary after 25 sessions each:\n");
  for (const auto& u : users) {
    std::printf("  %s beta=%.3f total_stall=%.1fs stall_exits=%zu/%zu\n", u.label,
                u.abr.params().hyb_beta, u.total_stall, u.stall_exits, u.sessions);
  }
  std::printf("\nExpected: the sensitive user converges to a lower beta than the"
              " tolerant user\n(conservative downloads trade bitrate for fewer"
              " stalls).\n");
  return 0;
}
