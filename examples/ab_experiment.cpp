// A/B experiment: a miniature version of the paper's §5.3 production test.
// Runs an AA period (days 0-4) and an AB period (days 5-9, LingXi active)
// over a simulated population, then reports the difference-in-differences
// estimate for watch time, bitrate and stall time.
#include <cstdio>
#include <memory>

#include "abr/hyb.h"
#include "analytics/experiment.h"
#include "common/rng.h"
#include "predictor/dataset.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"
#include "stats/did.h"

int main() {
  using namespace lingxi;

  analytics::ExperimentConfig cfg;
  cfg.users = 60;
  cfg.days = 10;
  cfg.sessions_per_user_day = 8;
  cfg.intervention_day = 5;
  cfg.network.median_bandwidth = 3000.0;  // include a meaningful low-BW tail
  cfg.lingxi.obo_rounds = 4;
  cfg.lingxi.monte_carlo.samples = 8;

  // Fit the population-level OS model from a synthetic log.
  auto os_model = std::make_shared<predictor::OverallStatsModel>();
  {
    Rng rng(1);
    predictor::DatasetGenConfig gen;
    gen.users = 30;
    gen.sessions_per_user = 12;
    gen.filter = predictor::DatasetFilter::kAll;
    const auto data = predictor::generate_dataset(gen, rng);
    for (const auto& s : data.samples) {
      os_model->observe(1, predictor::SwitchType::kNone, s.exited);
    }
  }
  // Train the stall-exit net on stall samples.
  Rng rng(2);
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  {
    predictor::DatasetGenConfig gen;
    gen.users = 30;
    gen.sessions_per_user = 12;
    gen.filter = predictor::DatasetFilter::kStall;
    auto data = predictor::generate_dataset(gen, rng);
    auto balanced = predictor::balance(data, rng);
    predictor::TrainConfig tcfg;
    tcfg.epochs = 5;
    predictor::train_exit_net(*net, balanced, tcfg, rng);
  }

  analytics::PopulationExperiment experiment(
      cfg, [] { return std::make_unique<abr::Hyb>(); },
      [&] { return predictor::HybridExitPredictor(net, os_model); });

  std::printf("running control arm...\n");
  const auto control = experiment.run(false, 99);
  std::printf("running treatment arm (LingXi from day %zu)...\n", cfg.intervention_day);
  const auto treatment = experiment.run(true, 99);

  const auto report = [&](const char* name, double (analytics::MetricAccumulator::*m)()
                                                const) {
    const auto gaps = analytics::relative_daily_gap(treatment, control, m);
    std::printf("\n%s relative gap per day (%%):\n  ", name);
    for (std::size_t d = 0; d < gaps.size(); ++d) {
      std::printf("%+.3f%s", gaps[d] * 100.0, d + 1 == gaps.size() ? "\n" : " ");
    }
    const std::vector<double> pre(gaps.begin(),
                                  gaps.begin() + static_cast<long>(cfg.intervention_day));
    const std::vector<double> post(gaps.begin() + static_cast<long>(cfg.intervention_day),
                                   gaps.end());
    const auto did = stats::difference_in_differences(pre, post);
    std::printf("  DiD effect: %+.3f%% +- %.3f%% (t=%.2f, p=%.4f)\n", did.effect * 100.0,
                did.stderr_effect * 100.0, did.t, did.p_two_sided);
  };

  report("watch time", &analytics::MetricAccumulator::total_watch_time);
  report("mean bitrate", &analytics::MetricAccumulator::mean_bitrate);
  report("stall time", &analytics::MetricAccumulator::total_stall_time);
  return 0;
}
